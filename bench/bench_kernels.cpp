// Kernel microbenchmarks (google-benchmark): the X-drop seed-and-extend
// kernel on true overlaps and false-positive candidates, the exact
// Smith-Waterman baseline, k-mer extraction/counting, and sequence
// pack/serialize — the per-task building blocks whose costs drive the
// application-level models.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "align/affine.hpp"
#include "align/batch.hpp"
#include "align/cigar.hpp"
#include "align/exact.hpp"
#include "align/xdrop.hpp"
#include "core/bsp.hpp"
#include "kmer/counter.hpp"
#include "obs/trace.hpp"
#include "kmer/minimizer.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "seq/read_store.hpp"
#include "util/rng.hpp"
#include "wl/genome.hpp"
#include "wl/presets.hpp"
#include "wl/sampler.hpp"

using namespace gnb;

namespace {

struct BenchData {
  std::vector<std::uint8_t> a_true, b_true;  // overlapping pair
  align::Seed seed_true;
  std::vector<std::uint8_t> a_false, b_false;  // unrelated pair
  align::Seed seed_false;
  seq::ReadStore reads;
};

const BenchData& data() {
  static const BenchData instance = [] {
    BenchData d;
    Xoshiro256 rng(123);
    wl::GenomeParams gp;
    gp.length = 60'000;
    gp.repeat_fraction = 0;
    const seq::Sequence genome = wl::generate_genome(gp, rng);
    wl::ReadSimParams rp;
    rp.coverage = 4;
    rp.mean_length = 3000;
    rp.error_rate = 0.12;
    rp.shuffle = false;
    wl::SampledDataset ds = wl::sample_reads(genome, rp, rng);

    // Find a strongly overlapping same-strand pair for the true case.
    for (std::size_t i = 0; i + 1 < ds.reads.size() && d.a_true.empty(); ++i) {
      for (std::size_t j = i + 1; j < ds.reads.size(); ++j) {
        if (ds.origins[i].reverse_strand != ds.origins[j].reverse_strand) continue;
        if (wl::true_overlap(ds.origins[i], ds.origins[j]) < 1500) continue;
        d.a_true = ds.reads.get(static_cast<seq::ReadId>(i)).sequence.unpack();
        d.b_true = ds.reads.get(static_cast<seq::ReadId>(j)).sequence.unpack();
        // Brute-force a short exact anchor.
        constexpr std::uint32_t k = 13;
        for (std::uint32_t pa = 0; pa + k < d.a_true.size() && d.seed_true.length == 0;
             pa += 19) {
          for (std::uint32_t pb = 0; pb + k < d.b_true.size(); pb += 1) {
            if (std::equal(d.a_true.begin() + pa, d.a_true.begin() + pa + k,
                           d.b_true.begin() + pb)) {
              d.seed_true = align::Seed{pa, pb, k, false};
              break;
            }
          }
        }
        if (d.seed_true.length == 0) d.a_true.clear();
        break;
      }
    }

    // Unrelated pair: reads from far-apart genome regions.
    d.a_false.assign(3000, 0);
    d.b_false.assign(3000, 0);
    for (auto& c : d.a_false) c = static_cast<std::uint8_t>(rng.below(4));
    for (auto& c : d.b_false) c = static_cast<std::uint8_t>(rng.below(4));
    // Plant a fake 17-mer match in the middle (a false-positive seed).
    for (std::uint32_t t = 0; t < 17; ++t) d.b_false[1500 + t] = d.a_false[1500 + t];
    d.seed_false = align::Seed{1500, 1500, 17, false};

    for (std::size_t i = 0; i < std::min<std::size_t>(ds.reads.size(), 40); ++i) {
      const auto& read = ds.reads.get(static_cast<seq::ReadId>(i));
      d.reads.add(read.name, read.sequence);
    }
    return d;
  }();
  return instance;
}

void BM_XdropTrueOverlap(benchmark::State& state) {
  const BenchData& d = data();
  if (d.a_true.empty()) {
    state.SkipWithError("no overlapping pair found");
    return;
  }
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto alignment = align::xdrop_align(d.a_true, d.b_true, d.seed_true, {});
    benchmark::DoNotOptimize(alignment.score);
    cells += alignment.cells;
  }
  state.counters["cells/s"] =
      benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_XdropTrueOverlap);

void BM_XdropFalsePositive(benchmark::State& state) {
  const BenchData& d = data();
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto alignment = align::xdrop_align(d.a_false, d.b_false, d.seed_false, {});
    benchmark::DoNotOptimize(alignment.score);
    cells += alignment.cells;
  }
  // Early termination: cells per call should be orders of magnitude below
  // the full DP size (9M cells for 3k x 3k).
  state.counters["cells/call"] = static_cast<double>(cells) /
                                 static_cast<double>(state.iterations());
}
BENCHMARK(BM_XdropFalsePositive);

void BM_SmithWatermanExact(benchmark::State& state) {
  const BenchData& d = data();
  // Exact O(nm) on 1/4-length slices to keep the bench quick.
  const std::span<const std::uint8_t> a(d.a_false.data(), 750);
  const std::span<const std::uint8_t> b(d.b_false.data(), 750);
  for (auto _ : state) {
    const auto result = align::smith_waterman(a, b);
    benchmark::DoNotOptimize(result.score);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 750 * 750, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmithWatermanExact);

void BM_KmerCounting(benchmark::State& state) {
  const BenchData& d = data();
  for (auto _ : state) {
    kmer::KmerCounter counter;
    counter.count_reads(d.reads.reads(), 17);
    benchmark::DoNotOptimize(counter.distinct());
  }
  state.counters["bases/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(d.reads.total_bases()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KmerCounting);

void BM_AffineSmithWaterman(benchmark::State& state) {
  const BenchData& d = data();
  const std::span<const std::uint8_t> a(d.a_false.data(), 750);
  const std::span<const std::uint8_t> b(d.b_false.data(), 750);
  for (auto _ : state) {
    const auto result = align::affine_smith_waterman(a, b);
    benchmark::DoNotOptimize(result.score);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 750 * 750, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AffineSmithWaterman);

void BM_BandedTraceback(benchmark::State& state) {
  const BenchData& d = data();
  if (d.a_true.empty()) {
    state.SkipWithError("no overlapping pair found");
    return;
  }
  // Re-align the overlap region with traceback (the error-correction
  // kernel): both sequences truncated to equal-ish windows.
  const std::size_t window = std::min<std::size_t>(
      1'500, std::min(d.a_true.size(), d.b_true.size()));
  const std::span<const std::uint8_t> a(d.a_true.data(), window);
  const std::span<const std::uint8_t> b(d.b_true.data(), window);
  for (auto _ : state) {
    const auto result = align::banded_global_traceback(a, b, 200);
    benchmark::DoNotOptimize(result.score);
  }
  state.counters["bases/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(window),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedTraceback);

void BM_MinimizerExtraction(benchmark::State& state) {
  const BenchData& d = data();
  const seq::Read& read = d.reads.get(0);
  for (auto _ : state) {
    const auto minimizers = kmer::extract_minimizers(read, 15, 10);
    benchmark::DoNotOptimize(minimizers.size());
  }
  state.counters["bases/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(read.length()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MinimizerExtraction);

void BM_ReadSerializeRoundtrip(benchmark::State& state) {
  const BenchData& d = data();
  const seq::Read& read = d.reads.get(0);
  for (auto _ : state) {
    std::vector<std::uint8_t> buffer;
    seq::serialize_read(read, buffer);
    std::size_t offset = 0;
    const seq::Read back = seq::deserialize_read(buffer, offset);
    benchmark::DoNotOptimize(back.id);
  }
}
BENCHMARK(BM_ReadSerializeRoundtrip);

// --- batch aligner: scalar vs inter-sequence SIMD --------------------------
//
// Times the same task list through both align::BatchAligner backends. The
// SIMD backend stripes eight independent extensions across vector lanes, so
// its advantage shows up on realistic batches (many live extensions), not on
// the single-pair cases above. Lane occupancy reports how full the lanes
// stayed: retired lanes idle until the whole width refills.

struct BatchKernelWorkload {
  // Owned storage; `tasks` holds spans into it, so it is built only after the
  // storage vector stops growing (the inner vectors' heap buffers are stable,
  // but spans are taken in a second pass for clarity).
  std::vector<std::vector<std::uint8_t>> storage;
  std::vector<align::Seed> seeds;
  std::vector<align::AlignTask> tasks;
};

BatchKernelWorkload make_batch_kernel_workload() {
  BatchKernelWorkload w;
  Xoshiro256 rng(321);
  wl::GenomeParams gp;
  gp.length = 80'000;
  gp.repeat_fraction = 0;
  const seq::Sequence genome = wl::generate_genome(gp, rng);
  wl::ReadSimParams rp;
  rp.coverage = 6;
  rp.mean_length = 1'500;
  rp.error_rate = 0.12;
  rp.shuffle = false;
  const wl::SampledDataset ds = wl::sample_reads(genome, rp, rng);

  for (std::size_t i = 0; i + 1 < ds.reads.size() && w.seeds.size() < 64; ++i) {
    for (std::size_t j = i + 1; j < ds.reads.size(); ++j) {
      if (ds.origins[i].reverse_strand != ds.origins[j].reverse_strand) continue;
      if (wl::true_overlap(ds.origins[i], ds.origins[j]) < 600) continue;
      auto a = ds.reads.get(static_cast<seq::ReadId>(i)).sequence.unpack();
      auto b = ds.reads.get(static_cast<seq::ReadId>(j)).sequence.unpack();
      align::Seed seed{};
      constexpr std::uint32_t k = 13;
      for (std::uint32_t pa = 0; pa + k < a.size() && seed.length == 0; pa += 17) {
        for (std::uint32_t pb = 0; pb + k < b.size(); pb += 1) {
          if (std::equal(a.begin() + pa, a.begin() + pa + k, b.begin() + pb)) {
            seed = align::Seed{pa, pb, static_cast<std::uint16_t>(k), false};
            break;
          }
        }
      }
      if (seed.length == 0) break;
      w.storage.push_back(std::move(a));
      w.storage.push_back(std::move(b));
      w.seeds.push_back(seed);
      break;  // at most one pair per i
    }
  }
  for (std::size_t p = 0; p < w.seeds.size(); ++p)
    w.tasks.push_back(
        align::AlignTask{w.storage[2 * p], w.storage[2 * p + 1], w.seeds[p]});
  return w;
}

const BatchKernelWorkload& batch_kernel_workload() {
  static const BatchKernelWorkload instance = make_batch_kernel_workload();
  return instance;
}

void run_batch_kernel_bench(benchmark::State& state, proto::BatchAlignerKind kind) {
  const BatchKernelWorkload& w = batch_kernel_workload();
  if (w.tasks.empty()) {
    state.SkipWithError("no overlapping pairs found");
    return;
  }
  const auto backend = align::make_batch_aligner(kind, {});
  for (auto _ : state) {
    const auto results = backend->align(w.tasks);
    benchmark::DoNotOptimize(results.data());
  }
  const align::BatchStats stats = backend->stats();
  state.counters["cells/s"] =
      benchmark::Counter(static_cast<double>(stats.cells), benchmark::Counter::kIsRate);
  state.counters["lane_occupancy"] = stats.occupancy();
  state.SetLabel(backend->info().name);
}

void BM_BatchXdropScalar(benchmark::State& state) {
  run_batch_kernel_bench(state, proto::BatchAlignerKind::kScalar);
}
BENCHMARK(BM_BatchXdropScalar);

void BM_BatchXdropSimd(benchmark::State& state) {
  run_batch_kernel_bench(state, proto::BatchAlignerKind::kSimd);
}
BENCHMARK(BM_BatchXdropSimd);

struct BatchKernelCase {
  align::BatchAlignerInfo info;
  std::uint64_t tasks = 0;
  std::uint64_t cells = 0;
  double seconds = 0;
  double mcells_per_s = 0;
  double occupancy = 0;
};

BatchKernelCase run_batch_kernel_case(const BatchKernelWorkload& w,
                                      proto::BatchAlignerKind kind) {
  const auto backend = align::make_batch_aligner(kind, {});
  BatchKernelCase result;
  result.info = backend->info();
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (elapsed < 0.3) {
    const auto results = backend->align(w.tasks);
    benchmark::DoNotOptimize(results.data());
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  }
  const align::BatchStats stats = backend->stats();
  result.tasks = stats.tasks;
  result.cells = stats.cells;
  result.seconds = elapsed;
  result.mcells_per_s = elapsed > 0 ? static_cast<double>(stats.cells) / elapsed / 1e6 : 0;
  result.occupancy = stats.occupancy();
  return result;
}

void append_batch_kernel_row(std::string& json, const char* label,
                             const BatchKernelCase& c, bool trailing_comma) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"labels\":{\"case\":\"%s\"},\"backend\":\"%s\",\"lanes\":%u,"
                "\"tasks\":%llu,\"cells\":%llu,\"seconds\":%.6f,"
                "\"mcells_per_s\":%.1f,\"lane_occupancy\":%.4f}%s\n",
                label, c.info.name, c.info.lanes,
                static_cast<unsigned long long>(c.tasks),
                static_cast<unsigned long long>(c.cells), c.seconds, c.mcells_per_s,
                c.occupancy, trailing_comma ? "," : "");
  json += buffer;
}

// --- read cache + alignment pool: whole-task throughput --------------------
//
// The microbenchmarks above time isolated kernels; this case times the full
// per-task path through core::TaskRunner (decode -> cache -> pool -> merge)
// on an E. coli preset with many tasks per read, and records the cache's
// effect on tasks/s. The X-drop threshold is tightened so the extension
// terminates quickly and the row isolates the decode/dispatch costs the
// cache and pool exist to amortize — the kernel itself is already costed by
// BM_XdropTrueOverlap.

struct CachePoolCase {
  std::size_t threads = 1;
  std::uint64_t cache_bytes = 0;
  std::uint64_t tasks = 0;
  double seconds = 0;
  double tasks_per_s = 0;
  double hit_rate = 0;
};

struct CachePoolWorkload {
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
};

CachePoolWorkload make_cache_pool_workload() {
  wl::DatasetSpec spec = wl::ecoli30x_spec();
  spec.genome.length = 20'000;  // quick single-rank slice of the preset
  // Long reads put the decode cost (proportional to read length) in charge;
  // each read still participates in many candidate pairs at 30x.
  spec.reads.mean_length = 6'000;
  spec.reads.min_length = 1'500;
  CachePoolWorkload w;
  w.dataset = wl::synthesize(spec, 7);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  w.tasks = pipeline::run_serial(w.dataset.reads, config, /*ranks=*/1);
  return w;
}

CachePoolCase run_cache_pool_case(const CachePoolWorkload& w, std::size_t threads,
                                  std::uint64_t cache_bytes) {
  core::EngineConfig config;
  // Terminate extensions almost immediately (negative expected slope at the
  // dataset's error rate + a tiny drop threshold): the DP never chases the
  // overlap, so the per-task cost is decode + dispatch, the thing this row
  // isolates.
  config.xdrop.x = 5;
  config.xdrop.scoring.mismatch = -9;
  config.xdrop.scoring.gap = -9;  // no cheap-gap detour around the penalty
  config.proto.compute_threads = threads;
  config.proto.read_cache_bytes = cache_bytes;
  CachePoolCase result;
  result.threads = threads;
  result.cache_bytes = cache_bytes;
  // Best of three runs: the case is short, so take the least-perturbed one.
  for (int rep = 0; rep < 3; ++rep) {
    rt::World world(1);
    core::EngineResult engine_result;
    const auto start = std::chrono::steady_clock::now();
    world.run([&](rt::Rank& rank) {
      engine_result = core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                      w.tasks.per_rank[0], config);
    });
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (rep == 0 || elapsed.count() < result.seconds) {
      result.tasks = engine_result.tasks_done;
      result.seconds = elapsed.count();
      result.hit_rate = engine_result.compute.hit_rate();
    }
  }
  result.tasks_per_s =
      result.seconds > 0 ? static_cast<double>(result.tasks) / result.seconds : 0;
  return result;
}

void append_cache_pool_row(std::string& json, const char* label,
                           const CachePoolCase& c, bool trailing_comma) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"labels\":{\"case\":\"%s\"},\"threads\":%zu,"
                "\"cache_bytes\":%llu,\"tasks\":%llu,\"seconds\":%.6f,"
                "\"tasks_per_s\":%.1f,\"cache_hit_rate\":%.4f}%s\n",
                label, c.threads, static_cast<unsigned long long>(c.cache_bytes),
                static_cast<unsigned long long>(c.tasks), c.seconds, c.tasks_per_s,
                c.hit_rate, trailing_comma ? "," : "");
  json += buffer;
}

// --- trace overhead: the alignment hot loop with recording on vs off ------
//
// Same serial BSP hot loop as the cache/pool rows, with the span tracer
// recording (as `gnbody overlap --trace` would) versus idle. When the tree
// is built with GNB_TRACE=OFF the macros compile to nothing and both rows
// measure the same code — the row then documents that the *compiled-out*
// overhead is zero, while a GNB_TRACE=ON build measures the live recording
// cost on the span/counter emission path.
CachePoolCase run_trace_overhead_case(const CachePoolWorkload& w, bool trace_on) {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (trace_on) tracer.enable();
  CachePoolCase result = run_cache_pool_case(w, /*threads=*/1, /*cache_bytes=*/0);
  if (trace_on) tracer.disable();
  return result;
}

/// Run the cache/pool case pair plus the scalar-vs-SIMD batch kernel pair and
/// write the `BENCH_kernels.json` rows the perf trajectory tracks: serial
/// with a starved cache (every lookup re-decodes, the pre-cache behavior) vs
/// the pooled cached configuration, and the batch x-drop kernel through both
/// BatchAligner backends with cells/s and lane occupancy.
void write_cache_pool_report() {
  const CachePoolWorkload w = make_cache_pool_workload();
  // cache_bytes=1 starves the cache: every entry is evicted as soon as the
  // next lookup arrives, so each task re-decodes both reads (old behavior).
  const CachePoolCase serial = run_cache_pool_case(w, /*threads=*/1, /*cache_bytes=*/1);
  const CachePoolCase pooled = run_cache_pool_case(w, /*threads=*/4, /*cache_bytes=*/0);
  const double speedup =
      serial.tasks_per_s > 0 ? pooled.tasks_per_s / serial.tasks_per_s : 0;

  const CachePoolCase trace_off = run_trace_overhead_case(w, /*trace_on=*/false);
  const CachePoolCase trace_on = run_trace_overhead_case(w, /*trace_on=*/true);
  const double trace_overhead_pct =
      trace_on.tasks_per_s > 0
          ? (trace_off.tasks_per_s / trace_on.tasks_per_s - 1.0) * 100.0
          : 0;

  const BatchKernelWorkload& bw = batch_kernel_workload();
  const BatchKernelCase kernel_scalar =
      run_batch_kernel_case(bw, proto::BatchAlignerKind::kScalar);
  const BatchKernelCase kernel_simd =
      run_batch_kernel_case(bw, proto::BatchAlignerKind::kSimd);
  const double kernel_speedup = kernel_scalar.mcells_per_s > 0
                                    ? kernel_simd.mcells_per_s / kernel_scalar.mcells_per_s
                                    : 0;

  std::string json;
  json += "{\n  \"bench\":\"kernels\",\n";
  char config_line[256];
  std::snprintf(config_line, sizeof(config_line),
                "  \"config\":{\"dataset\":\"ecoli30x\",\"genome_length\":20000,"
                "\"reads\":%zu,\"tasks\":%llu,\"kernel_pairs\":%zu},\n",
                w.dataset.reads.size(),
                static_cast<unsigned long long>(serial.tasks), bw.tasks.size());
  json += config_line;
  json += "  \"rows\":[\n";
  append_cache_pool_row(json, "align_tasks_serial_uncached", serial, true);
  append_cache_pool_row(json, "align_tasks_pool4_cached", pooled, true);
  append_cache_pool_row(json, "align_tasks_trace_off", trace_off, true);
  append_cache_pool_row(json, "align_tasks_trace_on", trace_on, true);
  append_batch_kernel_row(json, "batch_xdrop_scalar", kernel_scalar, true);
  append_batch_kernel_row(json, "batch_xdrop_simd", kernel_simd, false);
  json += "  ],\n";
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "  \"pool_cache_speedup\":%.2f,\n  \"simd_kernel_speedup\":%.2f,\n"
                "  \"trace_compiled\":%d,\n  \"trace_overhead_pct\":%.2f\n}\n",
                speedup, kernel_speedup, GNB_TRACE_ENABLED, trace_overhead_pct);
  json += tail;

  std::ofstream out("BENCH_kernels.json");
  out << json;
  std::printf(
      "cache/pool: serial-uncached %.0f tasks/s, pool4-cached %.0f tasks/s "
      "(%.2fx, hit rate %.1f%%) -> BENCH_kernels.json\n",
      serial.tasks_per_s, pooled.tasks_per_s, speedup, pooled.hit_rate * 100);
  std::printf(
      "batch kernel: %s %.1f Mcells/s vs %s %.1f Mcells/s (%.2fx, occupancy "
      "%.1f%%) -> BENCH_kernels.json\n",
      kernel_scalar.info.name, kernel_scalar.mcells_per_s, kernel_simd.info.name,
      kernel_simd.mcells_per_s, kernel_speedup, kernel_simd.occupancy * 100);
  std::printf(
      "trace overhead (compiled %s): off %.0f tasks/s vs on %.0f tasks/s "
      "(%.2f%% overhead) -> BENCH_kernels.json\n",
      GNB_TRACE_ENABLED ? "in" : "out", trace_off.tasks_per_s, trace_on.tasks_per_s,
      trace_overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_cache_pool_report();
  return 0;
}
