// Figure 12: memory footprint (absolute, left axis) together with overall
// runtime (right axis), strong scaling Human CCS.
//
// Paper shapes: Async keeps a lower, near-fixed memory footprint while
// achieving lower runtime via communication-computation overlap; the two
// engines converge at the largest scale (512 nodes / 32K cores).

#include <cstdio>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig12", "Memory footprint and runtime overlay (Fig. 12)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto csv = cli.opt<std::string>("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  const std::uint64_t capacity = bench::ccs_capacity(context);

  Table table({"nodes", "bsp_mem", "async_mem", "bsp_runtime_s", "async_runtime_s",
               "async/bsp_runtime"});
  bench::JsonReport report("fig12", context);
  for (const std::size_t nodes : {8, 16, 32, 64, 128, 256, 512}) {
    sim::MachineParams machine = bench::scaled_machine(context, nodes);
    machine.memory_per_core = capacity;
    sim::SimOptions options;
    options.calibration = context.calibration;
    const auto pair = bench::simulate_pair(context, machine, options);
    report.add_pair("nodes", std::to_string(nodes), pair);
    table.add_row({std::to_string(nodes),
                   format_bytes(static_cast<double>(pair.bsp.peak_memory_max)),
                   format_bytes(static_cast<double>(pair.async.peak_memory_max)),
                   pair.bsp.runtime, pair.async.runtime,
                   pair.async.runtime / pair.bsp.runtime});
  }
  table.print("Figure 12 — memory footprint and runtime, Human CCS");
  if (!csv->empty()) table.write_csv(*csv);
  report.write();
  return 0;
}
