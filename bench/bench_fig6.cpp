// Figure 6: difference between the maximum and minimum bulk-synchronous
// exchange loads (received read bytes per core), strong scaling Human CCS.
//
// Paper shape: a large, persistent gap between the min and max exchange
// loads across scales — variable read lengths drive communication load
// imbalance on top of the computational one.

#include <cstdio>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig6", "BSP exchange-load imbalance (Fig. 6)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto csv = cli.opt<std::string>("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);

  Table table({"nodes", "recv_min", "recv_max", "max-min", "max/min"});
  for (const std::size_t nodes : {8, 16, 32, 64, 128, 256, 512}) {
    const sim::MachineParams machine = bench::scaled_machine(context, nodes);
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    const sim::ExchangeLoad load = sim::exchange_load(assignment);
    table.add_row({std::to_string(nodes), format_bytes(static_cast<double>(load.min_bytes)),
                   format_bytes(static_cast<double>(load.max_bytes)),
                   format_bytes(static_cast<double>(load.max_bytes - load.min_bytes)),
                   load.min_bytes ? static_cast<double>(load.max_bytes) /
                                        static_cast<double>(load.min_bytes)
                                  : 0.0});
  }
  table.print("Figure 6 — BSP exchange load (received bytes per core), Human CCS");
  if (!csv->empty()) table.write_csv(*csv);
  return 0;
}
