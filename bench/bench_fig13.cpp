// Figure 13: computational overhead of traversing the local data
// structures that store alignment tasks — flat arrays (BSP code) versus
// pointer-based C++ standard-library containers (async code).
//
// Two parts:
//   1. a *real* microbenchmark on this host: identical task payloads
//      traversed as a flat std::vector (BSP style) versus an
//      std::unordered_map keyed by remote read holding pointers to
//      heap-allocated tasks (async style) — the classic
//      performance-vs-programmability trade-off;
//   2. the model's overhead time while strong scaling Human CCS, which
//      scales down toward a few percent of runtime, as in the paper.

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "figlib.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace gnb;

namespace {

struct TaskFlat {
  std::uint32_t a, b, a_pos, b_pos;
  std::uint16_t len;
  std::uint8_t flags;
};

volatile std::uint64_t g_sink;  // defeat dead-code elimination

double time_flat(const std::vector<TaskFlat>& tasks, int reps) {
  const double t0 = thread_cpu_seconds();
  std::uint64_t acc = 0;
  for (int rep = 0; rep < reps; ++rep)
    for (const TaskFlat& task : tasks)
      acc += task.a + task.b + task.a_pos + task.b_pos + task.len;
  g_sink = acc;
  return (thread_cpu_seconds() - t0) / reps;
}

double time_pointer(const std::unordered_map<std::uint32_t,
                                             std::vector<std::unique_ptr<TaskFlat>>>& index,
                    int reps) {
  const double t0 = thread_cpu_seconds();
  std::uint64_t acc = 0;
  for (int rep = 0; rep < reps; ++rep)
    for (const auto& [read, tasks] : index)
      for (const auto& task : tasks)
        acc += task->a + task->b + task->a_pos + task->b_pos + task->len;
  g_sink = acc;
  return (thread_cpu_seconds() - t0) / reps;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig13", "Local data-structure traversal overhead (Fig. 13)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto ntasks = cli.opt<std::uint64_t>("ntasks", 2'000'000, "microbenchmark task count");
  cli.parse(argc, argv);

  // --- part 1: real traversal microbenchmark ---
  Xoshiro256 rng(*seed);
  std::vector<TaskFlat> flat(*ntasks);
  std::unordered_map<std::uint32_t, std::vector<std::unique_ptr<TaskFlat>>> pointer_index;
  for (auto& task : flat) {
    task = TaskFlat{static_cast<std::uint32_t>(rng.below(1u << 20)),
                    static_cast<std::uint32_t>(rng.below(1u << 20)),
                    static_cast<std::uint32_t>(rng.below(10'000)),
                    static_cast<std::uint32_t>(rng.below(10'000)), 17, 0};
    pointer_index[task.b % (*ntasks / 16 + 1)].push_back(std::make_unique<TaskFlat>(task));
  }
  const double flat_ns = time_flat(flat, 5) / static_cast<double>(*ntasks) * 1e9;
  const double ptr_ns = time_pointer(pointer_index, 5) / static_cast<double>(*ntasks) * 1e9;
  std::printf("[fig13] traversal: flat arrays %.2f ns/task, pointer-based std containers "
              "%.2f ns/task -> %.2fx slower (the async code's programmability cost)\n",
              flat_ns, ptr_ns, ptr_ns / flat_ns);

  // --- part 2: modeled overhead while strong scaling Human CCS ---
  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  const std::uint64_t capacity = bench::ccs_capacity(context);
  Table table({"nodes", "bsp_overhead_s", "async_overhead_s", "async_overhead_%runtime"});
  bench::JsonReport report("fig13", context);
  double last_share = 0;
  for (const std::size_t nodes : {8, 16, 32, 64, 128, 256, 512}) {
    sim::MachineParams machine = bench::scaled_machine(context, nodes);
    machine.memory_per_core = capacity;
    sim::SimOptions options;
    options.calibration = context.calibration;
    const auto pair = bench::simulate_pair(context, machine, options);
    report.add_pair("nodes", std::to_string(nodes), pair);
    last_share = 100 * pair.async.overhead_avg / pair.async.runtime;
    table.add_row({std::to_string(nodes), pair.bsp.overhead_avg, pair.async.overhead_avg,
                   last_share});
  }
  std::printf("[fig13] async overhead share at 512 nodes: %.1f%% (paper: scales down to "
              "~4%%)\n", last_share);
  table.print("Figure 13 — data-structure traversal overhead, Human CCS");
  report.write();
  return 0;
}
