// Figure 8: comparative runtime breakdown strong scaling E. coli 100x,
// 1 -> 128 nodes (64 -> 8K cores).
//
// Paper shapes to reproduce:
//   * ~40x speedup at 128 nodes over 1 node; absolute parity of compute
//     and sync between the two codes;
//   * BSP visible communication grows from ~1% of runtime (1 node) to
//     >24% (128 nodes) even though memory allows a single exchange;
//   * Async hides most latency (<7% visible at 128 nodes) and is up to
//     ~12% more efficient.

#include <cstdio>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig8", "Strong scaling E. coli 100x, 1-128 nodes (Fig. 8)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto csv = cli.opt<std::string>("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::ecoli100x_spec(), *scale, *seed);

  Table table = bench::breakdown_table();
  bench::JsonReport report("fig8", context);
  double bsp_1node = 0;
  for (const std::size_t nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    sim::MachineParams machine = bench::scaled_machine(context, nodes);
    // Fig-8 premise: enough memory at every scale for a single exchange.
    machine.memory_per_core = ~std::uint64_t{0} >> 1;
    sim::SimOptions options;
    options.calibration = context.calibration;
    const auto pair = bench::simulate_pair(context, machine, options);
    bench::add_breakdown_rows(table, nodes, pair);
    report.add_pair("nodes", std::to_string(nodes), pair);
    if (nodes == 1) bsp_1node = pair.bsp.runtime;
    if (nodes == 128) {
      std::printf("[fig8] 128-node speedup: BSP %.1fx, Async %.1fx (paper ~40x)\n",
                  bsp_1node / pair.bsp.runtime, bsp_1node / pair.async.runtime);
      std::printf("[fig8] comm share at 128 nodes: BSP %.1f%% (paper >24%%), Async %.1f%% "
                  "(paper <7%%)\n",
                  100 * pair.bsp.comm_fraction(), 100 * pair.async.comm_fraction());
      std::printf("[fig8] Async efficiency gain at 128 nodes: %.1f%% (paper: up to 12%%)\n",
                  100 * (1 - pair.async.runtime / pair.bsp.runtime));
    }
  }
  table.print("Figure 8 — E. coli 100x strong scaling breakdown");
  if (!csv->empty()) table.write_csv(*csv);
  report.write();
  return 0;
}
