// End-to-end assembly cost on the machine model: the alignment phase
// (either engine) followed by the distributed graph phases 4-6 — edge
// build, transitive-reduction fixpoint, contig gather/replay — that
// pipeline::run_distributed_assembly executes. One row per node count and
// phase lands in BENCH_asm.json, so the graph phases' share of the
// end-to-end runtime is tracked the same way the figure benches track the
// alignment breakdowns. A final crash-injected row prices the recovery
// protocol (abandoned attempt + survivor replay) at one node count.

#include <cstdio>
#include <string>

#include "figlib.hpp"
#include "rt/fault.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_asm", "End-to-end assembly: alignment + distributed graph phases");
  auto scale = cli.opt<double>("scale", 20, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto crash_nodes = cli.opt<std::uint64_t>("crash-nodes", 64,
                                            "node count for the crash-injected row");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  sim::SimOptions options;
  options.calibration = context.calibration;
  bench::JsonReport report("asm", context);

  Table table({"nodes", "phase", "runtime_s", "comm_s", "sync_s", "graph_frac"});
  for (const std::uint64_t nodes : {8, 16, 32, 64}) {
    const sim::MachineParams machine = bench::scaled_machine(context, nodes);
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    const auto align = sim::reduce(sim::simulate_async(machine, assignment, options));
    const auto graph = sim::reduce(sim::simulate_assembly(machine, assignment, options));
    const std::string n = std::to_string(nodes);
    report.add({{"nodes", n}, {"phase", "align"}, {"engine", "Async"}}, align);
    report.add({{"nodes", n}, {"phase", "graph"}, {"engine", "Async"}}, graph);
    const double total = align.runtime + graph.runtime;
    table.add_row({n, std::string("align"), align.runtime, align.comm_avg, align.sync_avg,
                   total > 0 ? graph.runtime / total : 0.0});
    table.add_row({n, std::string("graph"), graph.runtime, graph.comm_avg, graph.sync_avg,
                   total > 0 ? graph.runtime / total : 0.0});
  }
  table.print("end-to-end assembly — alignment phase vs graph phases 4-6");
  std::printf("[asm] the graph phases stay a small tail of the end-to-end runtime at "
              "every node count: alignment dominates, as the paper's phase-1-3 focus "
              "assumes\n");

  // Crash-injected graph phases: one mid-reduction death, costed as the
  // executed protocol recovers it (abandon to the death's collective,
  // re-agree membership, survivor replay from manifests).
  {
    const sim::MachineParams machine = bench::scaled_machine(context, *crash_nodes);
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    sim::SimOptions faulty = options;
    faulty.faults = rt::FaultPlan::parse("seed=5,crash@2:6");
    const auto clean = sim::reduce(sim::simulate_assembly(machine, assignment, options));
    const auto crashed = sim::reduce(sim::simulate_assembly(machine, assignment, faulty));
    const std::string n = std::to_string(*crash_nodes);
    report.add({{"nodes", n}, {"phase", "graph"}, {"faults", "crash@2:6"}}, crashed);
    Table crash_table({"schedule", "runtime_s", "crashes", "slowdown"});
    crash_table.add_row({std::string("clean"), clean.runtime, double(clean.faults.crashes),
                         1.0});
    crash_table.add_row({std::string("crash@2:6"), crashed.runtime,
                         double(crashed.faults.crashes),
                         clean.runtime > 0 ? crashed.runtime / clean.runtime : 0.0});
    crash_table.print("graph phases under a mid-reduction crash");
  }

  report.write();
  return 0;
}
