// Table 1: the evaluation workloads — reads and alignment tasks per
// dataset, for the synthetic analogues side-by-side with the paper's
// numbers. The synthetic datasets are generated and pushed through the
// real k-mer pipeline (histogram -> BELLA reliable band -> candidate
// pairs); the model-scale counts used by the scaling figures are shown in
// the last columns.

#include <cstdio>

#include "kmer/bella_filter.hpp"
#include "pipeline/pipeline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wl/presets.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_table1", "Workload inventory (Table 1)");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "dataset RNG seed");
  auto only = cli.opt<std::string>("only", "", "restrict to one dataset by name");
  cli.parse(argc, argv);

  Table table({"dataset", "species", "reads(sim)", "tasks(sim)", "tasks/read(sim)",
               "reads(paper)", "tasks(paper)", "tasks/read(paper)", "kmer band"});
  for (const wl::DatasetSpec& spec : wl::paper_specs()) {
    if (!only->empty() && spec.name != *only) continue;
    const wl::SampledDataset dataset = wl::synthesize(spec, *seed);
    const kmer::ReliableBounds bounds = kmer::reliable_bounds(
        kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
    pipeline::PipelineConfig config;
    config.k = spec.k;
    config.lo = bounds.lo;
    config.hi = bounds.hi;
    config.keep_frac = spec.keep_frac;
    const std::vector<kmer::AlignTask> tasks =
        kmer::discover_tasks(dataset.reads, config.k, config.lo, config.hi, config.keep_frac);
    table.add_row(
        {spec.name, spec.species, static_cast<std::uint64_t>(dataset.reads.size()),
         static_cast<std::uint64_t>(tasks.size()),
         dataset.reads.size() ? static_cast<double>(tasks.size()) /
                                    static_cast<double>(dataset.reads.size())
                              : 0.0,
         spec.paper_reads, spec.paper_tasks,
         static_cast<double>(spec.paper_tasks) / static_cast<double>(spec.paper_reads),
         "[" + std::to_string(bounds.lo) + "," + std::to_string(bounds.hi) + "]"});
    std::printf("[table1] %s: %zu reads, %zu tasks\n", spec.name.c_str(), dataset.reads.size(),
                tasks.size());
  }
  table.print("Table 1 — evaluation workloads (synthetic analogues vs paper)");
  return 0;
}
