#include "figlib.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "proto/config.hpp"
#include "sim/assignment.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace gnb::bench {

FigureContext make_context(const wl::DatasetSpec& spec, double scale, std::uint64_t seed) {
  FigureContext context;
  context.spec = spec;
  context.scale = scale;
  context.seed = seed;
  context.workload = wl::model_workload(spec, scale, seed);
  context.calibration = core::calibrate_cost_model(seed);
  context.compute_threads = proto::compute_threads_from_env(1);
  log::info(spec.name, ": model workload ", context.workload.read_lengths.size(), " reads, ",
            context.workload.tasks.size(), " tasks (1/", scale, " of paper), kernel ",
            context.calibration.cells_per_second / 1e6, " Mcells/s");
  return context;
}

sim::MachineParams scaled_machine(const FigureContext& context, std::size_t nodes) {
  sim::MachineParams machine = sim::cori_knl(nodes);
  sim::scale_slice(machine, context.scale);
  return machine;
}

std::uint64_t ccs_capacity(const FigureContext& context) {
  // Capacity such that the BSP exchange first fits in a single superstep
  // at 64 nodes — the paper's crossover (memory-limited at 8-32 nodes,
  // single-round from 64 on). The workload is scaled, so the 1.4 GB
  // absolute line is replaced by this workload-relative equivalent.
  const sim::MachineParams machine64 = scaled_machine(context, 64);
  // Size the crossover under the active wire codec: compression shrinks
  // the exchange, so the capacity that makes 64 nodes single-round must
  // shrink with it or the 8-32 node points stop being memory-limited.
  const sim::SimAssignment assignment =
      sim::assign(context.workload, machine64.total_ranks(), sim::BalancePolicy::kCountBalanced,
                  proto::wire_compression_from_env());
  return static_cast<std::uint64_t>(
      1.02 * static_cast<double>(sim::single_round_capacity(assignment)));
}

PairResult simulate_pair(const FigureContext& context, const sim::MachineParams& machine,
                         const sim::SimOptions& options) {
  sim::SimOptions opts = options;
  if (opts.proto.compute_threads <= 1) opts.proto.compute_threads = context.compute_threads;
  // Size the modeled pulls with the active wire codec so the row's
  // exchange/wire-byte columns reflect what the engines would ship.
  const sim::SimAssignment assignment =
      sim::assign(context.workload, machine.total_ranks(), sim::BalancePolicy::kCountBalanced,
                  opts.proto.wire_compression);
  PairResult pair;
  pair.bsp = sim::reduce(sim::simulate_bsp(machine, assignment, opts));
  pair.async = sim::reduce(sim::simulate_async(machine, assignment, opts));
  return pair;
}

Table breakdown_table() { return Table(stat::breakdown_headers({"nodes", "engine"})); }

void add_breakdown_rows(Table& table, std::size_t nodes, const PairResult& pair) {
  stat::add_breakdown_row(table, {std::to_string(nodes), std::string("BSP")}, pair.bsp);
  stat::add_breakdown_row(table, {std::to_string(nodes), std::string("Async")}, pair.async);
}

JsonReport::JsonReport(std::string name, const FigureContext& context)
    : name_(std::move(name)) {
  std::ostringstream config;
  config << "{\"dataset\":";
  obs::json::write_string(config, context.spec.name);
  config << ",\"species\":";
  obs::json::write_string(config, context.spec.species);
  config << ",\"scale\":" << obs::json::number(context.scale)
         << ",\"seed\":" << context.seed
         << ",\"reads\":" << context.workload.read_lengths.size()
         << ",\"tasks\":" << context.workload.tasks.size() << ",\"cells_per_second\":"
         << obs::json::number(context.calibration.cells_per_second)
         << ",\"overhead_per_task\":"
         << obs::json::number(context.calibration.overhead_per_task)
         << ",\"compute_threads\":" << context.compute_threads << "}";
  config_json_ = config.str();
}

void JsonReport::add(Labels labels, const stat::Summary& summary) {
  rows_.push_back({std::move(labels), summary});
}

void JsonReport::add_pair(const std::string& key, const std::string& value,
                          const PairResult& pair) {
  add({{key, value}, {"engine", "BSP"}}, pair.bsp);
  add({{key, value}, {"engine", "Async"}}, pair.async);
}

namespace {

void write_row(std::ostream& out, const JsonReport::Labels& labels,
               const stat::Summary& s) {
  out << "{\"labels\":{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out << ",";
    obs::json::write_string(out, labels[i].first);
    out << ":";
    obs::json::write_string(out, labels[i].second);
  }
  out << "},\"phases_s\":{\"runtime\":" << obs::json::number(s.runtime)
      << ",\"compute_avg\":" << obs::json::number(s.compute_avg)
      << ",\"overhead_avg\":" << obs::json::number(s.overhead_avg)
      << ",\"comm_avg\":" << obs::json::number(s.comm_avg)
      << ",\"sync_avg\":" << obs::json::number(s.sync_avg)
      << ",\"compute_min\":" << obs::json::number(s.compute_min)
      << ",\"compute_max\":" << obs::json::number(s.compute_max) << "}"
      << ",\"load_imbalance\":" << obs::json::number(s.load_imbalance)
      << ",\"rounds\":" << s.rounds << ",\"messages\":" << s.messages
      << ",\"exchange_bytes\":" << s.exchange_bytes
      << ",\"peak_memory_bytes\":" << s.peak_memory_max << ",\"metrics\":";
  obs::MetricsRegistry registry;
  stat::export_metrics(s, registry);
  registry.write_json(out);
  out << "}";
}

}  // namespace

void JsonReport::write(const std::string& path) const {
  const std::string out_path = path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  GNB_THROW_IF(!out, "JsonReport: cannot open " + out_path);
  out << "{\"bench\":";
  obs::json::write_string(out, name_);
  out << ",\"config\":" << config_json_ << ",\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i != 0) out << ",";
    write_row(out, rows_[i].labels, rows_[i].summary);
  }
  out << "]}\n";
  GNB_THROW_IF(!out, "JsonReport: write failed for " + out_path);
  log::info("bench ", name_, ": wrote ", rows_.size(), " rows to ", out_path);
}

}  // namespace gnb::bench
