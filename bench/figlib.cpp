#include "figlib.hpp"

#include <cmath>

#include "sim/assignment.hpp"
#include "util/log.hpp"

namespace gnb::bench {

FigureContext make_context(const wl::DatasetSpec& spec, double scale, std::uint64_t seed) {
  FigureContext context;
  context.spec = spec;
  context.scale = scale;
  context.seed = seed;
  context.workload = wl::model_workload(spec, scale, seed);
  context.calibration = core::calibrate_cost_model(seed);
  log::info(spec.name, ": model workload ", context.workload.read_lengths.size(), " reads, ",
            context.workload.tasks.size(), " tasks (1/", scale, " of paper), kernel ",
            context.calibration.cells_per_second / 1e6, " Mcells/s");
  return context;
}

sim::MachineParams scaled_machine(const FigureContext& context, std::size_t nodes) {
  sim::MachineParams machine = sim::cori_knl(nodes);
  const double scale = context.scale;
  machine.cores_per_node = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(64.0 / scale)));
  machine.nic_bandwidth /= scale;
  machine.intranode_bandwidth /= scale;
  machine.global_bw_per_node /= scale;
  machine.a2a_setup_per_peer *= scale;  // the real run has scale-x more peers
  return machine;
}

std::uint64_t ccs_capacity(const FigureContext& context) {
  // Capacity such that the BSP exchange first fits in a single superstep
  // at 64 nodes — the paper's crossover (memory-limited at 8-32 nodes,
  // single-round from 64 on). The workload is scaled, so the 1.4 GB
  // absolute line is replaced by this workload-relative equivalent.
  const sim::MachineParams machine64 = scaled_machine(context, 64);
  const sim::SimAssignment assignment =
      sim::assign(context.workload, machine64.total_ranks());
  return static_cast<std::uint64_t>(
      1.02 * static_cast<double>(sim::single_round_capacity(assignment)));
}

PairResult simulate_pair(const FigureContext& context, const sim::MachineParams& machine,
                         const sim::SimOptions& options) {
  const sim::SimAssignment assignment =
      sim::assign(context.workload, machine.total_ranks());
  PairResult pair;
  pair.bsp = sim::reduce(sim::simulate_bsp(machine, assignment, options));
  pair.async = sim::reduce(sim::simulate_async(machine, assignment, options));
  return pair;
}

Table breakdown_table() { return Table(stat::breakdown_headers({"nodes", "engine"})); }

void add_breakdown_rows(Table& table, std::size_t nodes, const PairResult& pair) {
  stat::add_breakdown_row(table, {std::to_string(nodes), std::string("BSP")}, pair.bsp);
  stat::add_breakdown_row(table, {std::to_string(nodes), std::string("Async")}, pair.async);
}

}  // namespace gnb::bench
