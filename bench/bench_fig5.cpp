// Figure 5: minimum / average / maximum cumulative time in seed-and-extend
// calls (left axis) and load imbalance = max/avg (right axis), strong
// scaling Human CCS.
//
// Paper shapes: all three curves fall with scale; the max falls more
// slowly than the min, so the imbalance factor grows as the per-rank task
// count shrinks — tasks are balanced by *number*, not by cost (§4.2).

#include <cstdio>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig5", "Seed-and-extend time extremes & load imbalance (Fig. 5)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto csv = cli.opt<std::string>("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  const std::uint64_t capacity = bench::ccs_capacity(context);

  Table table({"nodes", "cores", "compute_min_s", "compute_avg_s", "compute_max_s",
               "load_imbalance"});
  bench::JsonReport report("fig5", context);
  double imbalance_first = 0, imbalance_last = 0;
  for (const std::size_t nodes : {8, 16, 32, 64, 128, 256, 512}) {
    sim::MachineParams machine = bench::scaled_machine(context, nodes);
    machine.memory_per_core = capacity;
    sim::SimOptions options;
    options.calibration = context.calibration;
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    const stat::Summary b = sim::reduce(sim::simulate_bsp(machine, assignment, options));
    report.add({{"nodes", std::to_string(nodes)}, {"engine", "BSP"}}, b);
    table.add_row({std::to_string(nodes), static_cast<std::uint64_t>(nodes * 64),
                   b.compute_min, b.compute_avg, b.compute_max, b.load_imbalance});
    if (nodes == 8) imbalance_first = b.load_imbalance;
    if (nodes == 512) imbalance_last = b.load_imbalance;
  }
  std::printf("[fig5] load imbalance grows %.2fx (8 nodes) -> %.2fx (512 nodes): %s\n",
              imbalance_first, imbalance_last,
              imbalance_last > imbalance_first ? "growing with scale as in the paper"
                                               : "NOT growing (paper: grows)");
  table.print("Figure 5 — cumulative seed-and-extend time extremes, Human CCS");
  if (!csv->empty()) table.write_csv(*csv);
  report.write();
  return 0;
}
