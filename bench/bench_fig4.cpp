// Figure 4: single-node runtime breakdowns on two problem sizes
// (E. coli 30x and E. coli 100x), 64 application cores.
//
// Paper shapes: the larger problem is ~94% compute-dominated versus ~90%
// for the smaller one; the two codes differ by ~1 s (< 0.3%) on the larger
// problem.

#include <cstdio>
#include <optional>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig4", "1-node breakdowns on 2 problem sizes (Fig. 4)");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto scale100 = cli.opt<double>("scale100", 4,
                                  "scale divisor for the 100x workload (task count only; "
                                  "1 = paper-size, slower to generate)");
  cli.parse(argc, argv);

  Table table({"dataset", "engine", "runtime_s", "compute_s", "overhead_s", "comm_s",
               "sync_s", "compute_%", "rounds"});
  // Two datasets share one report; config records the first (30x) context.
  std::optional<bench::JsonReport> report;

  for (const bool big : {false, true}) {
    const wl::DatasetSpec spec = big ? wl::ecoli100x_spec() : wl::ecoli30x_spec();
    const double scale = big ? *scale100 : 1.0;
    const auto context = bench::make_context(spec, scale, *seed);
    sim::MachineParams machine = sim::cori_knl(1);
    sim::SimOptions options;
    options.calibration = context.calibration;
    options.os_noise = 0.004;
    const auto pair = bench::simulate_pair(context, machine, options);
    if (!report) report.emplace("fig4", context);
    report->add_pair("dataset", spec.name, pair);
    for (const auto& [name, b] :
         {std::pair{"BSP", pair.bsp}, std::pair{"Async", pair.async}}) {
      table.add_row({spec.name, std::string(name), b.runtime, b.compute_avg, b.overhead_avg,
                     b.comm_avg, b.sync_avg, 100.0 * b.compute_avg / b.runtime,
                     static_cast<std::uint64_t>(b.rounds)});
    }
    std::printf("[fig4] %s: compute share BSP %.1f%%, engine diff %.3f%% (paper: %s)\n",
                spec.name.c_str(), 100.0 * pair.bsp.compute_avg / pair.bsp.runtime,
                100.0 * std::abs(pair.bsp.runtime - pair.async.runtime) /
                    std::min(pair.bsp.runtime, pair.async.runtime),
                big ? "~94% compute, diff < 0.3%" : "~90% compute, diff < 0.1%");
  }
  table.print("Figure 4 — single-node breakdown, E. coli 30x vs 100x (64 cores)");
  if (report) report->write();
  return 0;
}
