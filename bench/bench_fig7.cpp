// Figure 7: total average communication latency, strong scaling Human CCS
// with computation skipped (the comm-benchmarking mode of §4.3).
//
// Paper shapes: the bulk-synchronous latency starts lower but scales
// *sublinearly* from 8-512 nodes; the asynchronous latency scales with the
// workload (per-rank lookups fall as 1/P), producing a performance
// crossover between 32 and 64 nodes.

#include <cstdio>

#include "figlib.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_fig7", "Comm-only latency, BSP vs Async (Fig. 7)");
  auto scale = cli.opt<double>("scale", 10, "divide paper workload counts by this");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  auto window = cli.opt<std::uint64_t>("window", 64, "async outstanding-request cap");
  auto csv = cli.opt<std::string>("csv", "", "optional CSV output path");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  const std::uint64_t capacity = bench::ccs_capacity(context);

  Table table({"nodes", "bsp_comm_s", "async_comm_s", "async/bsp"});
  bench::JsonReport report("fig7", context);
  std::size_t crossover = 0;
  for (const std::size_t nodes : {8, 16, 32, 64, 128, 256, 512}) {
    sim::MachineParams machine = bench::scaled_machine(context, nodes);
    machine.memory_per_core = capacity;
    sim::SimOptions options;
    options.calibration = context.calibration;
    options.skip_compute = true;
    options.proto.async_window = *window;
    const auto pair = bench::simulate_pair(context, machine, options);
    report.add_pair("nodes", std::to_string(nodes), pair);
    // With compute skipped, the whole phase is communication + residual
    // overhead; compare total average visible time.
    const double bsp_latency = pair.bsp.comm_avg + pair.bsp.overhead_avg;
    const double async_latency = pair.async.comm_avg + pair.async.overhead_avg;
    table.add_row({std::to_string(nodes), bsp_latency, async_latency,
                   bsp_latency > 0 ? async_latency / bsp_latency : 0.0});
    if (crossover == 0 && async_latency < bsp_latency) crossover = nodes;
  }
  if (crossover != 0)
    std::printf("[fig7] async latency drops below BSP at %zu nodes "
                "(paper: crossover between 32 and 64 nodes)\n", crossover);
  else
    std::printf("[fig7] no crossover observed (paper: between 32 and 64 nodes)\n");
  table.print("Figure 7 — communication latency with computation skipped, Human CCS");
  if (!csv->empty()) table.write_csv(*csv);
  report.write();
  return 0;
}
