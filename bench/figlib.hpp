#pragma once
// Shared harness for the per-figure benchmark binaries.
//
// Every bench regenerates one paper table/figure: it builds the model
// workload for the figure's dataset, sweeps the figure's node counts, runs
// both engine models, and prints the same rows/series the paper reports
// (plus a CSV next to the binary when --csv is given). Absolute seconds are
// host-calibrated; the *shapes* are the reproduction target (DESIGN.md §4).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/calibrate.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sim/report.hpp"
#include "stat/breakdown.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wl/presets.hpp"

namespace gnb::bench {

struct FigureContext {
  wl::DatasetSpec spec;
  wl::SimWorkload workload;
  core::CostCalibration calibration;
  double scale = 20;
  std::uint64_t seed = 42;
  /// Modeled intra-rank alignment workers (proto::compute_threads);
  /// make_context seeds it from GNB_COMPUTE_THREADS so a bench sweep can
  /// flip the knob without per-binary flags.
  std::size_t compute_threads = 1;
};

/// Build the context for a dataset: generate the model workload at
/// 1/scale of the paper's counts and calibrate the kernel time base.
FigureContext make_context(const wl::DatasetSpec& spec, double scale, std::uint64_t seed);

/// A 1/scale *slice* of a Cori-KNL machine with `nodes` nodes: the model
/// workload is 1/scale of the paper's, so each node keeps 64/scale
/// application cores with 1/scale of the NIC and global bandwidth (and a
/// per-peer alltoallv setup cost inflated by scale, since the real run has
/// scale-times more peers). Per-rank task counts, read counts, exchange
/// bytes and bandwidth shares then match the paper's magnitudes at every
/// node count, which is what the breakdown shapes depend on. Per-core
/// memory stays at the real 1.4 GB.
sim::MachineParams scaled_machine(const FigureContext& context, std::size_t nodes);

/// Per-core memory override used by the Human-CCS figures: the estimated
/// all-at-once exchange footprint midway (geometric) between 32 and 64
/// nodes, so that BSP is memory-limited at 8-32 nodes and single-round from
/// 64 nodes on, as in the paper (Figs 9-11).
std::uint64_t ccs_capacity(const FigureContext& context);

/// One BSP + one Async simulation at `nodes`, with shared options.
struct PairResult {
  stat::Summary bsp;
  stat::Summary async;
};
PairResult simulate_pair(const FigureContext& context, const sim::MachineParams& machine,
                         const sim::SimOptions& options);

/// A table whose columns are stat::breakdown_headers({"nodes", "engine"}) —
/// pair with add_breakdown_rows.
[[nodiscard]] Table breakdown_table();

/// Standard breakdown rows: one per (nodes, engine), printed through the
/// shared stat::Breakdown table writer.
void add_breakdown_rows(Table& table, std::size_t nodes, const PairResult& pair);

/// Machine-readable companion to the printed tables: collects the figure
/// config and one entry per simulated (labels, Summary) row, then writes
/// `BENCH_<name>.json` so the perf trajectory of every bench run is
/// recorded, not just eyeballed. Fault counters are exported through
/// stat::export_metrics, so the JSON uses the same "fault.*" metric names
/// as `gnbody --metrics`.
///
///   {"bench":"fig5",
///    "config":{"dataset":...,"scale":...,"seed":...,"reads":...,"tasks":...,
///              "cells_per_second":...},
///    "rows":[{"labels":{"nodes":"64","engine":"BSP"},
///             "phases_s":{"runtime":...,"compute_avg":...,...},
///             "load_imbalance":...,"rounds":...,"messages":...,
///             "exchange_bytes":...,"peak_memory_bytes":...,
///             "metrics":{"counters":{...},"gauges":{...},"histograms":{}}}]}
class JsonReport {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  JsonReport(std::string name, const FigureContext& context);

  /// Record one simulated configuration; `labels` are the leading key
  /// columns of the printed table (e.g. {{"nodes","64"},{"engine","BSP"}}).
  void add(Labels labels, const stat::Summary& summary);

  /// Both engines of a PairResult under one shared leading label.
  void add_pair(const std::string& key, const std::string& value, const PairResult& pair);

  /// Write to `path`, or to "BENCH_<name>.json" when `path` is empty.
  /// Throws gnb::Error on I/O failure.
  void write(const std::string& path = std::string()) const;

 private:
  struct Row {
    Labels labels;
    stat::Summary summary;
  };

  std::string name_;
  std::string config_json_;  // pre-rendered {"dataset":...} object
  std::vector<Row> rows_;
};

}  // namespace gnb::bench
