// Ablations for the design choices and future-work directions DESIGN.md
// calls out, quantified on the machine model:
//
//   1. task-balancing policy: the paper's static count-balanced assignment
//      vs an idealized cost-balanced one — "the variability in
//      computational costs perhaps motivates a dynamic approach" (§5);
//   2. RPC vs RDMA-style one-sided pulls — "We leave a thorough
//      investigation of RDMA versus RPC performance to future work" (§3.2);
//   3. async pull aggregation on normal vs high-latency networks — "on a
//      high-latency network we would expect more aggregation to be
//      necessary" (§5).

#include <cstdio>

#include "figlib.hpp"
#include "obs/json.hpp"

using namespace gnb;

int main(int argc, char** argv) {
  Cli cli("bench_ablation", "Design-choice ablations on the machine model");
  auto scale = cli.opt<double>("scale", 20, "divide paper workload counts by this");
  auto nodes = cli.opt<std::uint64_t>("nodes", 64, "node count for the ablations");
  auto seed = cli.opt<std::uint64_t>("seed", 42, "workload RNG seed");
  cli.parse(argc, argv);

  const auto context = bench::make_context(wl::human_ccs_spec(), *scale, *seed);
  const sim::MachineParams machine = bench::scaled_machine(context, *nodes);
  sim::SimOptions base;
  base.calibration = context.calibration;
  bench::JsonReport report("ablation", context);

  // --- 1. balancing policy ---
  {
    Table table({"policy", "engine", "runtime_s", "sync_s", "load_imbalance"});
    for (const auto policy :
         {sim::BalancePolicy::kCountBalanced, sim::BalancePolicy::kCostBalanced}) {
      const sim::SimAssignment assignment =
          sim::assign(context.workload, machine.total_ranks(), policy);
      const auto bsp = sim::reduce(sim::simulate_bsp(machine, assignment, base));
      const auto async = sim::reduce(sim::simulate_async(machine, assignment, base));
      const char* name =
          policy == sim::BalancePolicy::kCountBalanced ? "count (paper)" : "cost (idealized)";
      report.add({{"ablation", "balance"}, {"policy", name}, {"engine", "BSP"}}, bsp);
      report.add({{"ablation", "balance"}, {"policy", name}, {"engine", "Async"}}, async);
      table.add_row({std::string(name), std::string("BSP"), bsp.runtime, bsp.sync_avg,
                     bsp.load_imbalance});
      table.add_row({std::string(name), std::string("Async"), async.runtime, async.sync_avg,
                     async.load_imbalance});
    }
    table.print("ablation 1 — static count-balanced vs idealized cost-balanced tasks");
    std::printf("[ablation] cost balancing bounds the gain any dynamic scheme could buy "
                "(paper §5: 'whether the performance improvements can compensate for the "
                "overheads of dynamic load balancing... will be the question')\n");
  }

  // --- 2. RPC vs RDMA-style pulls ---
  {
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    Table table({"pull mechanism", "runtime_s", "comm_s", "overhead_s"});
    for (const bool rdma : {false, true}) {
      sim::SimOptions options = base;
      options.async_rdma = rdma;
      const auto async = sim::reduce(sim::simulate_async(machine, assignment, options));
      report.add({{"ablation", "pull"}, {"mechanism", rdma ? "RDMA" : "RPC"},
                  {"engine", "Async"}},
                 async);
      table.add_row({std::string(rdma ? "RDMA (2 RTT, no callee CPU)" : "RPC (1 RTT + service)"),
                     async.runtime, async.comm_avg, async.overhead_avg});
    }
    table.print("ablation 2 — RPC vs RDMA-style one-sided lookup+get");
  }

  // --- 3. pull aggregation vs network latency ---
  {
    const sim::SimAssignment assignment =
        sim::assign(context.workload, machine.total_ranks());
    Table table({"internode latency", "batch", "async_runtime_s", "async_comm_s"});
    for (const double latency : {1.6e-6, 1e-4}) {
      std::size_t best_batch = 1;
      double best_runtime = 1e100;
      for (const std::size_t batch : {1, 4, 16, 64}) {
        sim::MachineParams slow = machine;
        slow.internode_latency = latency;
        sim::SimOptions options = base;
        options.proto.async_batch = batch;
        const auto async = sim::reduce(sim::simulate_async(slow, assignment, options));
        report.add({{"ablation", "aggregation"}, {"latency_s", obs::json::number(latency)},
                    {"batch", std::to_string(batch)}, {"engine", "Async"}},
                   async);
        table.add_row({format_seconds(latency), static_cast<std::uint64_t>(batch),
                       async.runtime, async.comm_avg});
        if (async.runtime < best_runtime) {
          best_runtime = async.runtime;
          best_batch = batch;
        }
      }
      std::printf("[ablation] at %s latency the best batch size is %zu\n",
                  format_seconds(latency).c_str(), best_batch);
    }
    table.print("ablation 3 — pull aggregation pays off as latency grows (§5)");
  }
  report.write();
  return 0;
}
