// Unit tests for gnb_util: RNG, statistics, histograms, tables, memory
// accounting, and wire packing.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/histogram.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/wire.hpp"

using namespace gnb;

// ---------- RNG ----------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BelowNeverReachesBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8'000; ++i) ++seen[rng.below(8)];
  for (int count : seen) EXPECT_GT(count, 700);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(13);
  double sum = 0, sum2 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, LognormalMean) {
  Xoshiro256 rng(17);
  const double mu = std::log(1000.0) - 0.16 / 2;
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, 0.4);
  EXPECT_NEAR(sum / n, 1000.0, 30.0);
}

TEST(Rng, BernoulliRate) {
  Xoshiro256 rng(19);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(23);
  Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, Splitmix64KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

// ---------- stats ----------

TEST(Stats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.imbalance(), 1.0);
}

TEST(Stats, MergeMatchesCombined) {
  Xoshiro256 rng(31);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 7;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Stats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, ImbalanceIsMaxOverMean) {
  RunningStats s;
  s.add(1.0);
  s.add(1.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 4.0 / 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({5}), 5.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
}

TEST(Stats, ReduceSpan) {
  const std::vector<double> v{1, 2, 3};
  const RunningStats s = reduce(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

// ---------- histograms ----------

TEST(CountHistogram, AddAndQuery) {
  CountHistogram h;
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(CountHistogram, RangeTotal) {
  CountHistogram h;
  for (std::uint64_t k = 1; k <= 10; ++k) h.add(k, k);
  EXPECT_EQ(h.total_in(3, 5), 3u + 4 + 5);
  EXPECT_EQ(h.total_in(11, 20), 0u);
  EXPECT_EQ(h.total_in(0, 100), h.total());
}

TEST(CountHistogram, Merge) {
  CountHistogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(9), 1u);
}

TEST(BinnedHistogram, BinningAndClamping) {
  BinnedHistogram h(0, 10, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3);    // clamps to 0
  h.add(100);   // clamps to 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(BinnedHistogram, RenderContainsCounts) {
  BinnedHistogram h(0, 4, 2);
  h.add(1);
  h.add(3);
  h.add(3.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

// ---------- table ----------

TEST(Table, PrettyAlignsAndIncludesData) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), 3.5});
  const std::string text = t.pretty();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("he said \"hi\"")});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowSizeIsChecked) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({std::string("only one")}), "");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_NE(format_bytes(2048).find("KB"), std::string::npos);
  EXPECT_NE(format_bytes(3.0e6).find("MB"), std::string::npos);
  EXPECT_NE(format_bytes(3.0e9).find("GB"), std::string::npos);
}

// ---------- memory meter ----------

TEST(MemoryMeter, ChargeReleasePeak) {
  MemoryMeter m;
  m.charge(100);
  m.charge(50);
  EXPECT_EQ(m.live(), 150u);
  EXPECT_EQ(m.peak(), 150u);
  m.release(120);
  EXPECT_EQ(m.live(), 30u);
  EXPECT_EQ(m.peak(), 150u);
  m.charge(10);
  EXPECT_EQ(m.peak(), 150u);  // peak unchanged below high water
}

TEST(MemoryMeter, ScopedAllocation) {
  MemoryMeter m;
  {
    ScopedAllocation a(m, 64);
    EXPECT_EQ(m.live(), 64u);
  }
  EXPECT_EQ(m.live(), 0u);
  EXPECT_EQ(m.peak(), 64u);
}

TEST(MemoryMeter, ConcurrentChargesAreConsistent) {
  MemoryMeter m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) {
        m.charge(3);
        m.release(3);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.live(), 0u);
  EXPECT_GE(m.peak(), 3u);
}

TEST(MemoryMeter, ProcessRssIsPositive) { EXPECT_GT(process_rss_bytes(), 0u); }

// ---------- timers ----------

TEST(Timer, StopwatchAccumulates) {
  Stopwatch sw;
  sw.add(1.5);
  sw.add(0.5);
  EXPECT_DOUBLE_EQ(sw.total(), 2.0);
  sw.reset();
  EXPECT_DOUBLE_EQ(sw.total(), 0.0);
}

TEST(Timer, StopwatchStartStopCharges) {
  Stopwatch sw;
  EXPECT_FALSE(sw.running());
  sw.start();
  EXPECT_TRUE(sw.running());
  volatile double x = 1;
  for (int i = 0; i < 100'000; ++i) x = x * 1.0000001;
  sw.stop();
  EXPECT_FALSE(sw.running());
  EXPECT_GT(sw.total(), 0.0);
}

TEST(Timer, StopwatchPauseSuspendsCharging) {
  Stopwatch sw;
  sw.start();
  sw.pause();
  EXPECT_TRUE(sw.paused());
  const double at_pause = sw.total();
  // Anything elapsed while paused must not be charged.
  volatile double x = 1;
  for (int i = 0; i < 500'000; ++i) x = x * 1.0000001;
  sw.resume();
  EXPECT_FALSE(sw.paused());
  sw.stop();
  EXPECT_GE(sw.total(), at_pause);
  // Pause/resume outside a running interval are no-ops.
  Stopwatch idle;
  idle.pause();
  idle.resume();
  EXPECT_FALSE(idle.running());
  EXPECT_DOUBLE_EQ(idle.total(), 0.0);
}

TEST(Timer, StopwatchStopWhilePausedKeepsPausedCharge) {
  Stopwatch sw;
  sw.start();
  sw.pause();
  const double charged = sw.total();
  sw.stop();  // stop during pause: the paused tail is not charged
  EXPECT_DOUBLE_EQ(sw.total(), charged);
  EXPECT_FALSE(sw.running());
}

TEST(Timer, ScopedPauseRestoresCharging) {
  Stopwatch sw;
  sw.start();
  {
    ScopedPause pause(sw);
    EXPECT_TRUE(sw.paused());
  }
  EXPECT_FALSE(sw.paused());
  EXPECT_TRUE(sw.running());
  sw.stop();
}

TEST(Timer, ScopedChargeAddsElapsed) {
  Stopwatch sw;
  {
    ScopedCharge charge(sw);
    volatile double x = 1;
    for (int i = 0; i < 100'000; ++i) x = x * 1.0000001;
  }
  EXPECT_GT(sw.total(), 0.0);
}

TEST(Timer, ThreadCpuAdvancesUnderWork) {
  const double t0 = thread_cpu_seconds();
  volatile double x = 1;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001;
  EXPECT_GT(thread_cpu_seconds(), t0);
}

// ---------- wire ----------

TEST(Wire, RoundTripMixed) {
  std::vector<std::uint8_t> buf;
  wire::put<std::uint32_t>(buf, 0xDEADBEEF);
  wire::put<std::uint64_t>(buf, 0x0123456789ABCDEFULL);
  wire::put<std::uint8_t>(buf, 7);
  wire::put<std::uint16_t>(buf, 65535);
  std::size_t off = 0;
  EXPECT_EQ(wire::get<std::uint32_t>(buf, off), 0xDEADBEEFu);
  EXPECT_EQ(wire::get<std::uint64_t>(buf, off), 0x0123456789ABCDEFULL);
  EXPECT_EQ(wire::get<std::uint8_t>(buf, off), 7u);
  EXPECT_EQ(wire::get<std::uint16_t>(buf, off), 65535u);
  EXPECT_EQ(off, buf.size());
}

TEST(Wire, TruncatedBufferThrows) {
  std::vector<std::uint8_t> buf{1, 2};
  std::size_t off = 0;
  EXPECT_THROW(wire::get<std::uint32_t>(buf, off), Error);
}

TEST(BinnedHistogram, InvalidBoundsAbort) {
  EXPECT_DEATH(BinnedHistogram(5, 5, 4), "");
  EXPECT_DEATH(BinnedHistogram(0, 10, 0), "");
}

TEST(Wire, LittleEndianLayout) {
  std::vector<std::uint8_t> buf;
  wire::put<std::uint32_t>(buf, 0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

// ---------- wire framing (checksum-framed payloads) ----------

TEST(WireFraming, EmptyPayloadRoundTrips) {
  std::vector<std::uint8_t> buf;
  wire::begin_checksum(buf);
  wire::seal_checksum(buf);
  ASSERT_EQ(buf.size(), wire::kChecksumBytes);
  std::size_t off = 0;
  ASSERT_TRUE(wire::verify_checksum(buf, off));
  EXPECT_EQ(off, buf.size());  // nothing left after the header
}

TEST(WireFraming, OneBytePayloadRoundTrips) {
  std::vector<std::uint8_t> buf;
  wire::begin_checksum(buf);
  buf.push_back(0xA5);
  wire::seal_checksum(buf);
  std::size_t off = 0;
  ASSERT_TRUE(wire::verify_checksum(buf, off));
  EXPECT_EQ(wire::get<std::uint8_t>(buf, off), 0xA5u);
  EXPECT_EQ(off, buf.size());
}

TEST(WireFraming, HugePayloadRoundTrips) {
  // Past any plausible internal 32-bit or 64-MiB assumption: the BSP
  // engine frames whole aggregated rounds through this path.
  constexpr std::size_t kHuge = (std::size_t{64} << 20) + 4'097;
  std::vector<std::uint8_t> buf;
  buf.reserve(wire::kChecksumBytes + kHuge);
  wire::begin_checksum(buf);
  for (std::size_t i = 0; i < kHuge; ++i)
    buf.push_back(static_cast<std::uint8_t>(i * 0x9E37 >> 8));
  wire::seal_checksum(buf);
  std::size_t off = 0;
  ASSERT_TRUE(wire::verify_checksum(buf, off));
  EXPECT_EQ(off, wire::kChecksumBytes);
  // A single flipped bit deep in the payload must be caught.
  buf[wire::kChecksumBytes + kHuge / 2] ^= 0x10;
  off = 0;
  EXPECT_FALSE(wire::verify_checksum(buf, off));
  EXPECT_EQ(off, 0u);
}

TEST(WireFraming, CorruptedHeaderIsRejected) {
  std::vector<std::uint8_t> buf;
  wire::begin_checksum(buf);
  for (std::uint8_t i = 0; i < 32; ++i) buf.push_back(i);
  wire::seal_checksum(buf);
  for (std::size_t byte = 0; byte < wire::kChecksumBytes; ++byte) {
    auto corrupt = buf;
    corrupt[byte] ^= 0x80;
    std::size_t off = 0;
    EXPECT_FALSE(wire::verify_checksum(corrupt, off)) << "header byte " << byte;
    EXPECT_EQ(off, 0u) << "offset must not advance on failure";
  }
  // A buffer shorter than the header cannot verify.
  std::vector<std::uint8_t> stub(wire::kChecksumBytes - 1, 0);
  std::size_t off = 0;
  EXPECT_FALSE(wire::verify_checksum(stub, off));
}

TEST(WireFraming, MidBufferFrameVerifies) {
  // Frames need not start at offset 0: recovery rounds append a framed
  // section after a plain prefix.
  std::vector<std::uint8_t> buf{9, 9, 9};
  const std::size_t start = buf.size();
  wire::begin_checksum(buf);
  for (std::uint8_t i = 0; i < 10; ++i) buf.push_back(i);
  wire::seal_checksum(buf, start);
  std::size_t off = start;
  ASSERT_TRUE(wire::verify_checksum(buf, off));
  EXPECT_EQ(off, start + wire::kChecksumBytes);
}
