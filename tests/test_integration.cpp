// Integration tests: the full flow — synthetic dataset -> distributed
// pipeline -> both engines -> quality against ground truth — plus
// FASTA-file round trips into the pipeline and end-to-end reproducibility.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <tuple>

#include "align/overlap.hpp"
#include "core/async.hpp"
#include "core/bsp.hpp"
#include "kmer/bella_filter.hpp"
#include "pipeline/distributed.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "seq/fasta.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

struct FlowResult {
  std::vector<align::AlignmentRecord> accepted;
  std::uint64_t tasks = 0;
};

FlowResult run_flow(const wl::SampledDataset& dataset, std::size_t nranks, bool async_mode,
                    bool distributed_pipeline, std::uint32_t k = 15) {
  const auto kmer_bounds = kmer::reliable_bounds(kmer::BellaParams{10, 0.10, k, 1e-3});
  pipeline::PipelineConfig config;
  config.k = k;
  config.lo = kmer_bounds.lo;
  config.hi = kmer_bounds.hi;

  pipeline::TaskSet tasks;
  if (distributed_pipeline) {
    tasks.bounds = pipeline::compute_bounds(dataset.reads, nranks);
    tasks.per_rank.resize(nranks);
    rt::World world(nranks);
    world.run([&](rt::Rank& rank) {
      tasks.per_rank[rank.id()] =
          pipeline::run_distributed(rank, dataset.reads, config, tasks.bounds);
    });
  } else {
    tasks = pipeline::run_serial(dataset.reads, config, nranks);
  }
  pipeline::check_owner_invariant(tasks);

  core::EngineConfig engine;
  engine.filter = align::AlignmentFilter{60, 120};
  FlowResult flow;
  flow.tasks = tasks.total_tasks();
  rt::World world(nranks);
  std::vector<std::vector<align::AlignmentRecord>> accepted(nranks);
  world.run([&](rt::Rank& rank) {
    core::EngineResult result =
        async_mode ? core::async_align(rank, dataset.reads, tasks.bounds,
                                       tasks.per_rank[rank.id()], engine)
                   : core::bsp_align(rank, dataset.reads, tasks.bounds,
                                     tasks.per_rank[rank.id()], engine);
    accepted[rank.id()] = std::move(result.accepted);
  });
  for (auto& records : accepted)
    flow.accepted.insert(flow.accepted.end(), records.begin(), records.end());
  std::sort(flow.accepted.begin(), flow.accepted.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b) < std::tie(y.read_a, y.read_b);
            });
  return flow;
}

const wl::SampledDataset& dataset() {
  static const wl::SampledDataset ds = [] {
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 18'000;
    spec.reads.coverage = 10;
    return wl::synthesize(spec, 31);
  }();
  return ds;
}

}  // namespace

TEST(Integration, FullFlowBspEqualsAsync) {
  const auto bsp = run_flow(dataset(), 4, false, true);
  const auto async = run_flow(dataset(), 4, true, true);
  ASSERT_EQ(bsp.accepted.size(), async.accepted.size());
  for (std::size_t i = 0; i < bsp.accepted.size(); ++i) {
    EXPECT_EQ(bsp.accepted[i].read_a, async.accepted[i].read_a);
    EXPECT_EQ(bsp.accepted[i].read_b, async.accepted[i].read_b);
    EXPECT_EQ(bsp.accepted[i].alignment.score, async.accepted[i].alignment.score);
  }
}

TEST(Integration, DistributedPipelineMatchesSerialDownstream) {
  const auto serial = run_flow(dataset(), 3, false, false);
  const auto distributed = run_flow(dataset(), 3, false, true);
  EXPECT_EQ(serial.tasks, distributed.tasks);
  ASSERT_EQ(serial.accepted.size(), distributed.accepted.size());
  for (std::size_t i = 0; i < serial.accepted.size(); ++i)
    EXPECT_EQ(serial.accepted[i].alignment.score, distributed.accepted[i].alignment.score);
}

TEST(Integration, QualityAgainstGroundTruth) {
  const auto flow = run_flow(dataset(), 4, false, true);
  ASSERT_GT(flow.accepted.size(), 0u);
  std::size_t true_positive = 0;
  for (const auto& record : flow.accepted) {
    if (wl::true_overlap(dataset().origins[record.read_a],
                         dataset().origins[record.read_b]) >= 150)
      ++true_positive;
  }
  std::size_t truth_pairs = 0;
  for (std::size_t i = 0; i < dataset().origins.size(); ++i)
    for (std::size_t j = i + 1; j < dataset().origins.size(); ++j)
      if (wl::true_overlap(dataset().origins[i], dataset().origins[j]) >= 150) ++truth_pairs;
  const double precision =
      static_cast<double>(true_positive) / static_cast<double>(flow.accepted.size());
  const double recall =
      static_cast<double>(true_positive) / static_cast<double>(truth_pairs);
  EXPECT_GT(precision, 0.7) << "too many spurious overlaps accepted";
  EXPECT_GT(recall, 0.5) << "too many true overlaps missed";
}

TEST(Integration, RunsTwiceIdentically) {
  const auto first = run_flow(dataset(), 2, true, true);
  const auto second = run_flow(dataset(), 2, true, true);
  ASSERT_EQ(first.accepted.size(), second.accepted.size());
  for (std::size_t i = 0; i < first.accepted.size(); ++i) {
    EXPECT_EQ(first.accepted[i].read_a, second.accepted[i].read_a);
    EXPECT_EQ(first.accepted[i].alignment.score, second.accepted[i].alignment.score);
    EXPECT_EQ(first.accepted[i].alignment.a_begin, second.accepted[i].alignment.a_begin);
  }
}

TEST(Integration, FastaRoundTripIntoPipeline) {
  // Write the dataset to FASTA, read it back, and verify the pipeline
  // produces identical task counts — file I/O does not perturb anything.
  std::ostringstream out;
  seq::FastaWriter writer(out);
  for (const auto& read : dataset().reads.reads())
    writer.write(seq::FastaRecord{read.name, "", read.sequence});

  std::istringstream in(out.str());
  seq::FastaReader reader(in);
  seq::ReadStore reloaded;
  while (auto record = reader.next()) reloaded.add(record->name, record->sequence);
  ASSERT_EQ(reloaded.size(), dataset().reads.size());

  pipeline::PipelineConfig config;
  config.k = 15;
  config.lo = 2;
  config.hi = 10;
  const auto from_memory = pipeline::run_serial(dataset().reads, config, 2);
  const auto from_file = pipeline::run_serial(reloaded, config, 2);
  EXPECT_EQ(from_memory.total_tasks(), from_file.total_tasks());
}

TEST(Integration, OverlapKindsArePlausible) {
  const auto flow = run_flow(dataset(), 2, false, true);
  std::size_t dovetails = 0, containments = 0;
  for (const auto& record : flow.accepted) {
    const auto kind = align::classify_overlap(
        record.alignment, dataset().reads.get(record.read_a).length(),
        dataset().reads.get(record.read_b).length());
    if (kind == align::OverlapKind::kDovetailAB || kind == align::OverlapKind::kDovetailBA)
      ++dovetails;
    else
      ++containments;
  }
  // Random read placement yields mostly dovetails with some containments.
  EXPECT_GT(dovetails, containments / 4);
}

TEST(Integration, ScalesFromOneToManyRanksIdentically) {
  const auto one = run_flow(dataset(), 1, false, true);
  const auto many = run_flow(dataset(), 8, false, true);
  EXPECT_EQ(one.tasks, many.tasks);
  ASSERT_EQ(one.accepted.size(), many.accepted.size());
  for (std::size_t i = 0; i < one.accepted.size(); ++i)
    EXPECT_EQ(one.accepted[i].alignment.score, many.accepted[i].alignment.score);
}

TEST(Integration, ModelAndRealWorkloadsAgreeOnShape) {
  // The statistical task model and the real pipeline should produce task
  // graphs of the same flavor: tasks/read within an order of magnitude.
  const auto flow = run_flow(dataset(), 2, false, false);
  const double real_tasks_per_read =
      static_cast<double>(flow.tasks) / static_cast<double>(dataset().reads.size());
  wl::TaskModelParams params;
  params.n_reads = dataset().reads.size();
  params.n_tasks = flow.tasks;
  const auto model = wl::generate_sim_workload(params, 3);
  const double model_tasks_per_read =
      static_cast<double>(model.tasks.size()) /
      static_cast<double>(model.read_lengths.size());
  EXPECT_NEAR(real_tasks_per_read, model_tasks_per_read, real_tasks_per_read * 0.01 + 1e-9);
}
