// Unit and property tests for gnb_kmer: packed k-mers, extraction,
// counting, the BELLA reliable-band filter and candidate generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "kmer/bella_filter.hpp"
#include "kmer/candidates.hpp"
#include "kmer/counter.hpp"
#include "kmer/extract.hpp"
#include "kmer/kmer.hpp"
#include "kmer/minimizer.hpp"
#include "util/rng.hpp"

using namespace gnb;
using namespace gnb::kmer;

namespace {

seq::Read make_read(seq::ReadId id, const std::string& bases) {
  return seq::Read{id, "r" + std::to_string(id), seq::Sequence::from_string(bases)};
}

Kmer kmer_of(const std::string& bases) {
  Kmer km(0, static_cast<std::uint32_t>(bases.size()));
  for (char ch : bases) km = km.rolled(seq::dna_encode(ch));
  return km;
}

std::string random_dna(std::size_t length, Xoshiro256& rng) {
  std::string s(length, 'A');
  for (auto& ch : s) ch = seq::dna_decode(static_cast<std::uint8_t>(rng.below(4)));
  return s;
}

}  // namespace

// ---------- Kmer ----------

TEST(Kmer, ToStringRoundTrip) {
  EXPECT_EQ(kmer_of("ACGTT").to_string(), "ACGTT");
  EXPECT_EQ(kmer_of("GGGG").to_string(), "GGGG");
}

TEST(Kmer, RolledSlidesWindow) {
  Kmer km = kmer_of("ACG");
  km = km.rolled(seq::dna_encode('T'));
  EXPECT_EQ(km.to_string(), "CGT");
}

TEST(Kmer, ReverseComplementKnown) {
  EXPECT_EQ(kmer_of("ACGT").reverse_complement().to_string(), "ACGT");  // palindrome
  EXPECT_EQ(kmer_of("AAACC").reverse_complement().to_string(), "GGTTT");
}

class KmerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KmerProperty, ReverseComplementIsInvolution) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Kmer km(rng() & ((GetParam() == 32) ? ~0ULL : ((1ULL << (2 * GetParam())) - 1)),
                  GetParam());
    EXPECT_EQ(km.reverse_complement().reverse_complement(), km);
  }
}

TEST_P(KmerProperty, CanonicalIsMinOfStrands) {
  Xoshiro256 rng(GetParam() + 100);
  for (int trial = 0; trial < 50; ++trial) {
    const Kmer km(rng() & ((GetParam() == 32) ? ~0ULL : ((1ULL << (2 * GetParam())) - 1)),
                  GetParam());
    bool reversed = false;
    const Kmer canon = km.canonical(&reversed);
    EXPECT_LE(canon.bits(), km.bits());
    EXPECT_LE(canon.bits(), km.reverse_complement().bits());
    EXPECT_EQ(canon, reversed ? km.reverse_complement() : km);
    // Canonical of the reverse complement is the same k-mer.
    EXPECT_EQ(km.reverse_complement().canonical(), canon);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KmerProperty, ::testing::Values(1u, 2u, 15u, 16u, 17u, 31u, 32u));

TEST(Kmer, InvalidKAborts) { EXPECT_DEATH(Kmer(0, 33), ""); }

// ---------- extraction ----------

TEST(Extract, CountsWindows) {
  const auto read = make_read(0, "ACGTACGTAC");  // 10 bases, k=4 -> 7 windows
  EXPECT_EQ(extract_kmers(read, 4).size(), 7u);
}

TEST(Extract, SkipsWindowsContainingN) {
  const auto read = make_read(0, "ACGTNACGT");  // N kills windows covering position 4
  const auto kmers = extract_kmers(read, 4);
  // Valid windows: positions 0 ("ACGT") and 5 ("ACGT") only.
  EXPECT_EQ(kmers.size(), 2u);
}

TEST(Extract, ShortReadYieldsNothing) {
  const auto read = make_read(0, "ACG");
  EXPECT_TRUE(extract_kmers(read, 4).empty());
}

TEST(Extract, EmitsCanonicalForm) {
  // "AAACC" forward; reverse complement read must emit identical k-mers.
  const auto fwd = make_read(0, "AAACCGGT");
  const auto rc_read =
      make_read(1, seq::Sequence::from_string("AAACCGGT").reverse_complement().to_string());
  auto k1 = extract_kmers(fwd, 5);
  auto k2 = extract_kmers(rc_read, 5);
  auto key = [](const Kmer& km) { return km.bits(); };
  std::multiset<std::uint64_t> s1, s2;
  for (const auto& km : k1) s1.insert(key(km));
  for (const auto& km : k2) s2.insert(key(km));
  EXPECT_EQ(s1, s2);
}

TEST(Extract, OccurrencePositionsAreWindowStarts) {
  const auto read = make_read(3, "ACGTAC");
  std::vector<std::uint32_t> positions;
  for_each_kmer(read, 3, [&](const Kmer&, const Occurrence& occ) {
    EXPECT_EQ(occ.read, 3u);
    positions.push_back(occ.pos);
  });
  EXPECT_EQ(positions, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

// ---------- counting ----------

TEST(Counter, CountsAcrossReads) {
  KmerCounter counter;
  counter.count_reads({make_read(0, "AAAAA"), make_read(1, "AAAAA")}, 5);
  // "AAAAA" canonical appears once per read.
  EXPECT_EQ(counter.distinct(), 1u);
  EXPECT_EQ(counter.total(), 2u);
  EXPECT_EQ(counter.count(kmer_of("AAAAA").canonical()), 2u);
}

TEST(Counter, MergeEqualsCombinedCount) {
  Xoshiro256 rng(7);
  const auto r0 = make_read(0, random_dna(300, rng));
  const auto r1 = make_read(1, random_dna(300, rng));
  KmerCounter separate_a, separate_b, combined;
  separate_a.count_reads({r0}, 11);
  separate_b.count_reads({r1}, 11);
  combined.count_reads({r0, r1}, 11);
  separate_a.merge(separate_b);
  EXPECT_EQ(separate_a.distinct(), combined.distinct());
  EXPECT_EQ(separate_a.total(), combined.total());
}

TEST(Counter, HistogramAccountsForAllDistinctKmers) {
  Xoshiro256 rng(8);
  KmerCounter counter;
  counter.count_reads({make_read(0, random_dna(500, rng))}, 9);
  const CountHistogram hist = counter.histogram();
  EXPECT_EQ(hist.total(), counter.distinct());
}

TEST(Counter, RetainedRespectsBand) {
  KmerCounter counter;
  counter.add(kmer_of("AAAAA"), 1);
  counter.add(kmer_of("ACGTA"), 3);
  counter.add(kmer_of("GGGGG"), 10);
  const auto keep = counter.retained(2, 8);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], kmer_of("ACGTA"));
}

// ---------- BELLA filter ----------

TEST(Bella, BinomialPmfSumsToOne) {
  for (const double p : {0.1, 0.5, 0.9}) {
    double sum = 0;
    for (std::uint64_t m = 0; m <= 30; ++m) sum += binomial_pmf(30, p, m);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Bella, PmfEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.5, 11), 0.0);
}

TEST(Bella, UpperTailMonotoneDecreasing) {
  double prev = 1.0;
  for (std::uint64_t m = 0; m <= 20; ++m) {
    const double tail = binomial_upper_tail(20, 0.3, m);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
}

TEST(Bella, BoundsScaleWithCoverage) {
  const auto low = reliable_bounds(BellaParams{20, 0.15, 17, 1e-3});
  const auto high = reliable_bounds(BellaParams{100, 0.15, 17, 1e-3});
  EXPECT_EQ(low.lo, 2u);
  EXPECT_EQ(high.lo, 2u);
  EXPECT_GT(high.hi, low.hi);  // deeper coverage keeps higher multiplicities
}

TEST(Bella, HigherErrorLowersUpperBound) {
  const auto clean = reliable_bounds(BellaParams{30, 0.05, 17, 1e-3});
  const auto noisy = reliable_bounds(BellaParams{30, 0.30, 17, 1e-3});
  EXPECT_GE(clean.hi, noisy.hi);
  EXPECT_GT(clean.p_correct, noisy.p_correct);
}

TEST(Bella, BoundsAreOrdered) {
  for (double cov : {10.0, 30.0, 100.0})
    for (double err : {0.02, 0.15, 0.30}) {
      const auto b = reliable_bounds(BellaParams{cov, err, 17, 1e-3});
      EXPECT_LE(b.lo, b.hi);
      EXPECT_GE(b.lo, 2u);
    }
}

// ---------- candidates ----------

TEST(Candidates, OverlappingReadsProduceOneTask) {
  // Two reads sharing a 30-base block; all shared k-mers must collapse to
  // one task per pair.
  Xoshiro256 rng(9);
  const std::string shared = random_dna(30, rng);
  const std::string a = random_dna(20, rng) + shared;
  const std::string b = shared + random_dna(25, rng);
  seq::ReadStore store;
  store.add("a", seq::Sequence::from_string(a));
  store.add("b", seq::Sequence::from_string(b));
  const auto tasks = discover_tasks(store, 15, 1, 100);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].a, 0u);
  EXPECT_EQ(tasks[0].b, 1u);
  EXPECT_EQ(tasks[0].seed.length, 15u);
}

TEST(Candidates, SeedActuallyMatchesForwardCase) {
  Xoshiro256 rng(10);
  const std::string shared = random_dna(40, rng);
  const std::string a = random_dna(33, rng) + shared + random_dna(10, rng);
  const std::string b = random_dna(7, rng) + shared;
  seq::ReadStore store;
  store.add("a", seq::Sequence::from_string(a));
  store.add("b", seq::Sequence::from_string(b));
  const auto tasks = discover_tasks(store, 13, 1, 100);
  ASSERT_FALSE(tasks.empty());
  for (const auto& task : tasks) {
    const auto ca = store.get(task.a).sequence.unpack();
    auto cb = store.get(task.b).sequence.unpack();
    if (task.seed.b_reversed) {
      std::reverse(cb.begin(), cb.end());
      for (auto& code : cb) code = seq::dna_complement(code);
    }
    for (std::uint16_t i = 0; i < task.seed.length; ++i)
      EXPECT_EQ(ca[task.seed.a_pos + i], cb[task.seed.b_pos + i])
          << "seed mismatch at offset " << i;
  }
}

TEST(Candidates, SeedMatchesReverseComplementCase) {
  Xoshiro256 rng(11);
  const std::string shared = random_dna(40, rng);
  const std::string a = random_dna(12, rng) + shared + random_dna(9, rng);
  // b carries the reverse complement of the shared block.
  const std::string rc =
      seq::Sequence::from_string(shared).reverse_complement().to_string();
  const std::string b = random_dna(21, rng) + rc + random_dna(5, rng);
  seq::ReadStore store;
  store.add("a", seq::Sequence::from_string(a));
  store.add("b", seq::Sequence::from_string(b));
  const auto tasks = discover_tasks(store, 13, 1, 100);
  ASSERT_FALSE(tasks.empty());
  bool found_reversed = false;
  for (const auto& task : tasks) {
    if (!task.seed.b_reversed) continue;
    found_reversed = true;
    const auto ca = store.get(task.a).sequence.unpack();
    auto cb = store.get(task.b).sequence.unpack();
    std::reverse(cb.begin(), cb.end());
    for (auto& code : cb) code = seq::dna_complement(code);
    for (std::uint16_t i = 0; i < task.seed.length; ++i)
      EXPECT_EQ(ca[task.seed.a_pos + i], cb[task.seed.b_pos + i]);
  }
  EXPECT_TRUE(found_reversed);
}

TEST(Candidates, TaskInvariantALessThanB) {
  Xoshiro256 rng(12);
  seq::ReadStore store;
  const std::string shared = random_dna(60, rng);
  for (int i = 0; i < 6; ++i)
    store.add("r", seq::Sequence::from_string(random_dna(10 + 3 * i, rng) + shared));
  for (const auto& task : discover_tasks(store, 15, 1, 100)) EXPECT_LT(task.a, task.b);
}

TEST(Candidates, SelfPairsExcluded) {
  // A read with an internal repeat shares k-mers with itself; no self task.
  Xoshiro256 rng(13);
  const std::string repeat = random_dna(30, rng);
  seq::ReadStore store;
  store.add("r", seq::Sequence::from_string(repeat + random_dna(15, rng) + repeat));
  EXPECT_TRUE(discover_tasks(store, 13, 1, 100).empty());
}

TEST(Candidates, FrequencyFilterRemovesRepeatKmers) {
  Xoshiro256 rng(14);
  const std::string repeat = random_dna(25, rng);
  seq::ReadStore store;
  // 12 reads all containing the same repeat: its k-mers have multiplicity
  // 12 > hi 8 and must be filtered out. Without the filter every one of
  // the C(12,2) = 66 pairs becomes a candidate; with it, only incidental
  // junction k-mers (random prefix boundary + repeat start, multiplicity
  // within the band) survive.
  for (int i = 0; i < 12; ++i)
    store.add("r", seq::Sequence::from_string(random_dna(40 + i, rng) + repeat));
  const auto unfiltered = discover_tasks(store, 15, 1, 1000);
  EXPECT_EQ(unfiltered.size(), 66u);
  const auto filtered = discover_tasks(store, 15, 2, 8);
  EXPECT_LT(filtered.size(), unfiltered.size() / 2);
}

TEST(Candidates, KeepFracSketchingReducesPostingWork) {
  Xoshiro256 rng(15);
  const std::string shared = random_dna(200, rng);
  seq::ReadStore store;
  for (int i = 0; i < 4; ++i)
    store.add("r", seq::Sequence::from_string(random_dna(20 + 7 * i, rng) + shared));
  // With 200 shared bases there are ~186 shared 15-mers: even keeping 20%
  // of k-mers, every overlapping pair is still found.
  const auto full = discover_tasks(store, 15, 1, 100, 1.0);
  const auto sketched = discover_tasks(store, 15, 1, 100, 0.2);
  EXPECT_EQ(full.size(), sketched.size());
}

TEST(Candidates, DeterministicSeedChoice) {
  Xoshiro256 rng(16);
  const std::string shared = random_dna(80, rng);
  seq::ReadStore store;
  store.add("a", seq::Sequence::from_string(shared + random_dna(30, rng)));
  store.add("b", seq::Sequence::from_string(random_dna(11, rng) + shared));
  const auto t1 = discover_tasks(store, 13, 1, 100);
  const auto t2 = discover_tasks(store, 13, 1, 100);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].seed.a_pos, t2[i].seed.a_pos);
    EXPECT_EQ(t1[i].seed.b_pos, t2[i].seed.b_pos);
    EXPECT_EQ(t1[i].seed.b_reversed, t2[i].seed.b_reversed);
  }
}

// ---------- minimizers ----------

TEST(Minimizers, DensityNearExpected) {
  Xoshiro256 rng(21);
  const auto read = make_read(0, random_dna(20'000, rng));
  const std::uint32_t w = 10;
  const auto minimizers = extract_minimizers(read, 15, w);
  const double n_kmers = 20'000 - 15 + 1;
  const double density = static_cast<double>(minimizers.size()) / n_kmers;
  EXPECT_NEAR(density, minimizer_density(w), 0.05);
}

TEST(Minimizers, SubsetOfAllKmers) {
  Xoshiro256 rng(22);
  const auto read = make_read(0, random_dna(1'000, rng));
  const auto all = extract_kmers(read, 13);
  const auto minimizers = extract_minimizers(read, 13, 8);
  EXPECT_LT(minimizers.size(), all.size());
  // Every minimizer is a real k-mer at its reported position.
  for (const auto& m : minimizers) {
    ASSERT_LT(m.occurrence.pos, all.size());
    EXPECT_EQ(all[m.occurrence.pos], m.kmer);
  }
}

TEST(Minimizers, SharedStretchSharesAMinimizer) {
  // Guarantee: two reads sharing >= w+k-1 exact bases share a minimizer.
  Xoshiro256 rng(23);
  const std::uint32_t k = 13, w = 6;
  const std::string shared = random_dna(k + w - 1 + 40, rng);  // comfortably long
  const auto r0 = make_read(0, random_dna(200, rng) + shared);
  const auto r1 = make_read(1, shared + random_dna(150, rng));
  auto keys = [](const std::vector<Minimizer>& ms) {
    std::set<std::uint64_t> s;
    for (const auto& m : ms) s.insert(m.kmer.bits());
    return s;
  };
  const auto k0 = keys(extract_minimizers(r0, k, w));
  const auto k1 = keys(extract_minimizers(r1, k, w));
  bool common = false;
  for (const auto bits : k0) common |= k1.contains(bits);
  EXPECT_TRUE(common);
}

TEST(Minimizers, PositionsAreSortedAndDeduplicated) {
  Xoshiro256 rng(24);
  const auto read = make_read(0, random_dna(3'000, rng));
  const auto minimizers = extract_minimizers(read, 11, 5);
  for (std::size_t i = 1; i < minimizers.size(); ++i)
    EXPECT_LT(minimizers[i - 1].occurrence.pos, minimizers[i].occurrence.pos);
}

TEST(Minimizers, WindowOneKeepsEverything) {
  Xoshiro256 rng(25);
  const auto read = make_read(0, random_dna(500, rng));
  EXPECT_EQ(extract_minimizers(read, 13, 1).size(), extract_kmers(read, 13).size());
}

TEST(Minimizers, NResetsWindows) {
  // Ns split the read into independent segments; no crash, sane output.
  const auto read = make_read(0, "ACGTACGTACGTNNACGTACGTACGTACGT");
  const auto minimizers = extract_minimizers(read, 5, 3);
  EXPECT_GT(minimizers.size(), 0u);
  for (const auto& m : minimizers) {
    // No reported window may straddle the Ns at positions 12-13.
    EXPECT_TRUE(m.occurrence.pos + 5 <= 12 || m.occurrence.pos >= 14);
  }
}

TEST(Candidates, DisjointReadsShareNothing) {
  // Distinct random reads of this size essentially never share a 15-mer.
  Xoshiro256 rng(17);
  seq::ReadStore store;
  for (int i = 0; i < 5; ++i) store.add("r", seq::Sequence::from_string(random_dna(400, rng)));
  EXPECT_TRUE(discover_tasks(store, 15, 1, 100).empty());
}
