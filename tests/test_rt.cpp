// Tests for the threaded SPMD runtime: collectives, the RPC engine and
// the split-phase / service barriers, exercised with real concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "rt/world.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

using namespace gnb;
using namespace gnb::rt;

// ---------- collectives ----------

class WorldRanks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorldRanks, BarrierSeparatesPhases) {
  World world(GetParam());
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  world.run([&](Rank& rank) {
    phase_one.fetch_add(1);
    rank.barrier();
    // After the barrier every rank must have completed phase one.
    if (phase_one.load() != static_cast<int>(rank.nranks())) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(WorldRanks, AllreduceSumMinMax) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    const double mine = static_cast<double>(rank.id()) + 1;
    const double sum = rank.allreduce_sum(mine);
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(p * (p + 1)) / 2);
    EXPECT_DOUBLE_EQ(rank.allreduce_min(mine), 1.0);
    EXPECT_DOUBLE_EQ(rank.allreduce_max(mine), static_cast<double>(p));
  });
}

TEST_P(WorldRanks, AllgatherReturnsEveryValue) {
  World world(GetParam());
  world.run([&](Rank& rank) {
    const auto values = rank.allgather(static_cast<double>(rank.id()) * 10);
    ASSERT_EQ(values.size(), rank.nranks());
    for (std::size_t r = 0; r < values.size(); ++r)
      EXPECT_DOUBLE_EQ(values[r], static_cast<double>(r) * 10);
  });
}

TEST_P(WorldRanks, AlltoallDeliversTaggedValues) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    std::vector<std::uint64_t> send(p);
    for (std::size_t dst = 0; dst < p; ++dst) send[dst] = rank.id() * 1000 + dst;
    const auto recv = rank.alltoall(send);
    ASSERT_EQ(recv.size(), p);
    for (std::size_t src = 0; src < p; ++src) EXPECT_EQ(recv[src], src * 1000 + rank.id());
  });
}

TEST_P(WorldRanks, AlltoallvConservesTaggedBytes) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    Xoshiro256 rng(rank.id() + 100);
    std::vector<Bytes> send(p);
    for (std::size_t dst = 0; dst < p; ++dst) {
      const std::size_t len = rng.below(300);
      send[dst].resize(len);
      // Tag each byte with a (src, dst)-dependent pattern.
      for (std::size_t i = 0; i < len; ++i)
        send[dst][i] = static_cast<std::uint8_t>((rank.id() * 7 + dst * 13 + i) & 0xFF);
    }
    std::vector<std::size_t> sent_lens(p);
    for (std::size_t dst = 0; dst < p; ++dst) sent_lens[dst] = send[dst].size();

    const auto recv = rank.alltoallv(std::move(send));
    ASSERT_EQ(recv.size(), p);
    for (std::size_t src = 0; src < p; ++src) {
      // Reconstruct what src must have sent us: src's RNG stream.
      Xoshiro256 src_rng(src + 100);
      std::size_t expect_len = 0;
      for (std::size_t dst = 0; dst <= rank.id(); ++dst) expect_len = src_rng.below(300);
      ASSERT_EQ(recv[src].size(), expect_len);
      for (std::size_t i = 0; i < expect_len; ++i)
        EXPECT_EQ(recv[src][i],
                  static_cast<std::uint8_t>((src * 7 + rank.id() * 13 + i) & 0xFF));
    }
  });
}

TEST_P(WorldRanks, BackToBackCollectivesDoNotInterfere) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    for (int round = 0; round < 5; ++round) {
      std::vector<Bytes> send(p);
      for (std::size_t dst = 0; dst < p; ++dst)
        send[dst] = Bytes{static_cast<std::uint8_t>(round), static_cast<std::uint8_t>(rank.id())};
      const auto recv = rank.alltoallv(std::move(send));
      for (std::size_t src = 0; src < p; ++src) {
        ASSERT_EQ(recv[src].size(), 2u);
        EXPECT_EQ(recv[src][0], static_cast<std::uint8_t>(round));
        EXPECT_EQ(recv[src][1], static_cast<std::uint8_t>(src));
      }
      EXPECT_DOUBLE_EQ(rank.allreduce_sum(1.0), static_cast<double>(p));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, WorldRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST_P(WorldRanks, BroadcastFromEveryRoot) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    for (RankId root = 0; root < p; ++root) {
      Bytes buffer;
      if (rank.id() == root) buffer = Bytes{static_cast<std::uint8_t>(root), 0xBE};
      const Bytes received = rank.broadcast(std::move(buffer), root);
      ASSERT_EQ(received.size(), 2u);
      EXPECT_EQ(received[0], static_cast<std::uint8_t>(root));
      EXPECT_EQ(received[1], 0xBE);
    }
  });
}

TEST_P(WorldRanks, GatherCollectsOntoRoot) {
  World world(GetParam());
  const std::size_t p = GetParam();
  world.run([&](Rank& rank) {
    const RankId root = static_cast<RankId>(p - 1);
    Bytes mine(rank.id() + 1, static_cast<std::uint8_t>(rank.id()));
    const auto gathered = rank.gather(std::move(mine), root);
    if (rank.id() == root) {
      ASSERT_EQ(gathered.size(), p);
      for (std::size_t src = 0; src < p; ++src) {
        EXPECT_EQ(gathered[src].size(), src + 1);
        if (!gathered[src].empty()) {
          EXPECT_EQ(gathered[src][0], static_cast<std::uint8_t>(src));
        }
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(WorldRanks, ExscanIsExclusivePrefixSum) {
  World world(GetParam());
  world.run([&](Rank& rank) {
    const double mine = static_cast<double>(rank.id()) + 1;
    const double prefix = rank.exscan_sum(mine);
    // Sum of 1..id.
    EXPECT_DOUBLE_EQ(prefix, static_cast<double>(rank.id()) *
                                 static_cast<double>(rank.id() + 1) / 2.0);
  });
}

TEST(World, RunTwiceOnSameWorld) {
  World world(3);
  std::atomic<int> counter{0};
  for (int run = 0; run < 2; ++run) {
    world.run([&](Rank& rank) {
      rank.barrier();
      counter.fetch_add(1);
      rank.barrier();
    });
  }
  EXPECT_EQ(counter.load(), 6);
}

TEST(World, BreakdownsCollected) {
  World world(2);
  world.run([&](Rank& rank) {
    rank.timers().compute.add(1.5);
    rank.memory().charge(100);
  });
  ASSERT_EQ(world.breakdowns().size(), 2u);
  EXPECT_DOUBLE_EQ(world.breakdowns()[0].compute, 1.5);
  EXPECT_EQ(world.breakdowns()[1].peak_memory, 100u);
}

// ---------- RPC ----------

TEST(Rpc, EchoRoundTrip) {
  World world(2);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(1, [](std::uint32_t, std::span<const std::uint8_t> in) {
      RpcEndpoint::Bytes reply(in.begin(), in.end());
      reply.push_back(0xAA);
      return reply;
    });
    rank.barrier();  // handlers registered everywhere
    bool got = false;
    const std::uint32_t peer = 1 - rank.id();
    rank.rpc().call(peer, 1, {1, 2, 3}, [&](RpcEndpoint::Bytes reply) {
      ASSERT_EQ(reply.size(), 4u);
      EXPECT_EQ(reply[0], 1);
      EXPECT_EQ(reply[3], 0xAA);
      got = true;
    });
    rank.rpc().drain();
    EXPECT_TRUE(got);
    rank.service_barrier();
  });
}

TEST(Rpc, ManyMessagesAllAnswered) {
  World world(4);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(7, [&](std::uint32_t, std::span<const std::uint8_t> in) {
      std::size_t offset = 0;
      const auto x = wire::get<std::uint32_t>(in, offset);
      RpcEndpoint::Bytes reply;
      wire::put<std::uint32_t>(reply, x * 2);
      return reply;
    });
    rank.barrier();
    std::uint64_t answered = 0;
    Xoshiro256 rng(rank.id());
    for (std::uint32_t i = 0; i < 500; ++i) {
      rank.rpc().throttle(32);
      const auto target = static_cast<std::uint32_t>(rng.below(4));
      RpcEndpoint::Bytes payload;
      wire::put<std::uint32_t>(payload, i);
      rank.rpc().call(target, 7, std::move(payload), [&answered, i](RpcEndpoint::Bytes reply) {
        std::size_t offset = 0;
        EXPECT_EQ(wire::get<std::uint32_t>(reply, offset), i * 2);
        ++answered;
      });
    }
    rank.rpc().drain();
    EXPECT_EQ(answered, 500u);
    EXPECT_EQ(rank.rpc().messages_sent(), 500u);
    rank.service_barrier();
  });
}

TEST(Rpc, ThrottleBoundsOutstanding) {
  World world(2);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(2, [](std::uint32_t, std::span<const std::uint8_t>) {
      return RpcEndpoint::Bytes{};
    });
    rank.barrier();
    for (int i = 0; i < 100; ++i) {
      rank.rpc().throttle(8);
      EXPECT_LT(rank.rpc().outstanding(), 8u);
      rank.rpc().call(1 - rank.id(), 2, {}, [](RpcEndpoint::Bytes) {});
    }
    rank.rpc().drain();
    EXPECT_EQ(rank.rpc().outstanding(), 0u);
    rank.service_barrier();
  });
}

TEST(Rpc, SelfCallWorks) {
  World world(1);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(3, [](std::uint32_t src, std::span<const std::uint8_t>) {
      EXPECT_EQ(src, 0u);
      return RpcEndpoint::Bytes{42};
    });
    bool got = false;
    rank.rpc().call(0, 3, {}, [&](RpcEndpoint::Bytes reply) {
      EXPECT_EQ(reply.at(0), 42);
      got = true;
    });
    rank.rpc().drain();
    EXPECT_TRUE(got);
    rank.service_barrier();
  });
}

TEST(Rpc, ServedCountsTracked) {
  World world(2);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(4, [](std::uint32_t, std::span<const std::uint8_t>) {
      return RpcEndpoint::Bytes{};
    });
    rank.barrier();
    if (rank.id() == 0) {
      for (int i = 0; i < 10; ++i) rank.rpc().call(1, 4, {}, [](RpcEndpoint::Bytes) {});
      rank.rpc().drain();
    }
    rank.service_barrier();
    if (rank.id() == 1) {
      EXPECT_EQ(rank.rpc().requests_served(), 10u);
    }
  });
}

TEST(Rpc, StressManyRanksMixedTrafficAndThrottles) {
  // Endpoint stress: 8 ranks hammer call/progress/throttle concurrently
  // with varying payload sizes, varying throttle limits, and bursts of
  // back-to-back calls — the workload the ThreadSanitizer CI job runs to
  // flush data races out of the inbox/held-queue locking.
  constexpr std::size_t kRanks = 8;
  constexpr std::uint32_t kCalls = 400;
  World world(kRanks);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(21, [](std::uint32_t, std::span<const std::uint8_t> in) {
      // Echo back the payload checksum so the caller can verify integrity.
      RpcEndpoint::Bytes reply;
      wire::put<std::uint64_t>(reply, wire::checksum(in));
      return reply;
    });
    rank.barrier();
    std::uint64_t answered = 0;
    Xoshiro256 rng(rank.id() * 17 + 5);
    for (std::uint32_t i = 0; i < kCalls; ++i) {
      rank.rpc().throttle(1 + rng.below(64));  // shifting window limits
      const auto target = static_cast<std::uint32_t>(rng.below(kRanks));
      RpcEndpoint::Bytes payload(rng.below(256), static_cast<std::uint8_t>(i));
      const std::uint64_t expected = wire::checksum(payload);
      rank.rpc().call(target, 21, std::move(payload),
                      [&answered, expected](RpcEndpoint::Bytes reply) {
                        std::size_t offset = 0;
                        EXPECT_EQ(wire::get<std::uint64_t>(reply, offset), expected);
                        ++answered;
                      });
      if (rng.below(4) == 0) rank.rpc().progress();  // interleave extra polls
    }
    rank.rpc().drain();
    EXPECT_EQ(answered, kCalls);
    rank.service_barrier();
  });
}

TEST(Rpc, StressUnderFaultInjectionStillCompletesEveryCall) {
  // Same hammering, with every injector fault mode active. The endpoint
  // contract under injection: each call's callback still fires exactly
  // once (duplicate replies are dropped as orphans), no delivery is lost,
  // and the run terminates.
  constexpr std::size_t kRanks = 4;
  constexpr std::uint32_t kCalls = 250;
  World world(kRanks);
  FaultPlan plan;
  plan.seed = 77;
  plan.delay_prob = 0.4;
  plan.max_delay_ticks = 12;
  plan.dup_prob = 0.3;
  plan.reorder_prob = 0.3;
  world.set_faults(plan);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(22, [](std::uint32_t, std::span<const std::uint8_t> in) {
      return RpcEndpoint::Bytes(in.begin(), in.end());
    });
    rank.barrier();
    std::uint64_t answered = 0;
    Xoshiro256 rng(rank.id() + 900);
    for (std::uint32_t i = 0; i < kCalls; ++i) {
      rank.rpc().throttle(16);
      const auto target = static_cast<std::uint32_t>(rng.below(kRanks));
      RpcEndpoint::Bytes payload;
      wire::put<std::uint32_t>(payload, i);
      rank.rpc().call(target, 22, std::move(payload),
                      [&answered, i](RpcEndpoint::Bytes reply) {
                        std::size_t offset = 0;
                        EXPECT_EQ(wire::get<std::uint32_t>(reply, offset), i);
                        ++answered;
                      });
    }
    rank.rpc().drain();
    EXPECT_EQ(answered, kCalls);
    rank.service_barrier();
  });
}

// ---------- split-phase and service barriers ----------

TEST(SplitBarrier, ComputesWhileWaiting) {
  World world(4);
  std::atomic<int> local_work{0};
  world.run([&](Rank& rank) {
    rank.split_barrier_arrive();
    local_work.fetch_add(1);  // "compute local tasks during the barrier"
    rank.split_barrier_wait();
    // When the wait completes, every rank has arrived (and so has had the
    // chance to do its local work before or during our wait).
    EXPECT_EQ(local_work.load(), 4);
  });
}

TEST(ServiceBarrier, ServesRequestsUntilEveryoneArrives) {
  // Rank 0 issues RPCs late; other ranks must stay serviceable inside the
  // service barrier.
  World world(4);
  world.run([&](Rank& rank) {
    rank.rpc().register_handler(9, [&](std::uint32_t, std::span<const std::uint8_t>) {
      RpcEndpoint::Bytes reply;
      wire::put<std::uint32_t>(reply, rank.id());
      return reply;
    });
    rank.barrier();
    if (rank.id() == 0) {
      std::size_t got = 0;
      for (std::uint32_t peer = 1; peer < 4; ++peer) {
        rank.rpc().call(peer, 9, {}, [&got, peer](RpcEndpoint::Bytes reply) {
          std::size_t offset = 0;
          EXPECT_EQ(wire::get<std::uint32_t>(reply, offset), peer);
          ++got;
        });
      }
      rank.rpc().drain();
      EXPECT_EQ(got, 3u);
    }
    rank.service_barrier();
  });
}

TEST(ServiceBarrier, RepeatedUseInOneRun) {
  World world(3);
  world.run([&](Rank& rank) {
    for (int round = 0; round < 3; ++round) rank.service_barrier();
  });
  SUCCEED();
}

TEST(Timers, CommChargedByAlltoallv) {
  World world(2);
  world.run([&](Rank& rank) {
    std::vector<Bytes> send(2, Bytes(128, 1));
    (void)rank.alltoallv(std::move(send));
    EXPECT_GE(rank.timers().comm.total(), 0.0);
  });
  // comm shows up in the collected breakdowns
  for (const auto& b : world.breakdowns()) EXPECT_GE(b.comm, 0.0);
}

// ---------- peer death: fail-fast RPC and durable storage ----------

TEST(Rpc, CallToDeadPeerFailsFastWithPeerDead) {
  World world(2);
  world.set_faults(FaultPlan::parse("crash@1:0"));
  world.run([&](Rank& rank) {
    if (rank.id() == 1) {
      rank.barrier();  // dies at its first collective entry (fault step 0)
      FAIL() << "rank 1 outlived its scheduled crash";
    }
    // Rank 0: pull from the (dying) peer with the status-aware overload and
    // poll until the in-flight request fails fast — no timeout involved.
    bool done = false;
    RpcStatus status = RpcStatus::kOk;
    rank.rpc().call(1, 99, {1, 2, 3}, [&](RpcStatus s, RpcEndpoint::Bytes reply) {
      status = s;
      EXPECT_TRUE(reply.empty());
      done = true;
    });
    while (!done) rank.rpc().progress();
    EXPECT_EQ(status, RpcStatus::kPeerDead);
    EXPECT_GE(rank.rpc().peer_death_failures(), 1u);
  });
}

TEST(Rpc, LegacyCallbackThrowsTypedErrorOnPeerDeath) {
  World world(2);
  world.set_faults(FaultPlan::parse("crash@1:0"));
  world.run([&](Rank& rank) {
    if (rank.id() == 1) {
      rank.barrier();  // dies at its first collective entry
      FAIL() << "rank 1 outlived its scheduled crash";
    }
    rank.rpc().call(1, 99, {}, [](RpcEndpoint::Bytes) { FAIL() << "reply from the dead"; });
    bool threw = false;
    while (!threw && rank.rpc().outstanding() > 0) {
      try {
        rank.rpc().progress();
      } catch (const RpcPeerDeadError&) {
        threw = true;
      }
    }
    EXPECT_TRUE(threw);
  });
}

TEST(Rpc, OutOfRangeTargetThrowsTypedRpcError) {
  World world(2);
  world.run([&](Rank& rank) {
    if (rank.id() != 0) return;
    EXPECT_THROW(rank.rpc().call(2, 1, {}, [](RpcEndpoint::Bytes) {}), RpcError);
    EXPECT_THROW(rank.rpc().call(17, 1, {}, [](RpcStatus, RpcEndpoint::Bytes) {}), RpcError);
  });
}

TEST(DurableStore, WritesSurviveAndAppendsAccumulate) {
  DurableStore store;
  store.reset(2);
  EXPECT_TRUE(store.manifest(0).empty());
  EXPECT_TRUE(store.log(1).empty());
  EXPECT_EQ(store.write_manifest(0, {1, 2, 3}), 3u);
  EXPECT_EQ(store.append_log(1, {9}), 1u);
  EXPECT_EQ(store.append_log(1, {8, 7}), 2u);
  EXPECT_EQ(store.manifest(0), (DurableStore::Bytes{1, 2, 3}));
  EXPECT_EQ(store.log(1), (DurableStore::Bytes{9, 8, 7}));
  EXPECT_EQ(store.bytes_written(), 6u);
  // reset() starts the next phase empty.
  store.reset(3);
  EXPECT_TRUE(store.manifest(0).empty());
  EXPECT_TRUE(store.log(1).empty());
  EXPECT_EQ(store.bytes_written(), 0u);
}

TEST(DurableStore, DeadWriterBytesRemainReadable) {
  // Durability contract: bytes a rank wrote before dying stay readable by
  // the survivors through World's store.
  World world(2);
  world.set_faults(FaultPlan::parse("crash@1:0"));
  world.run([&](Rank& rank) {
    if (rank.id() == 1) {
      rank.durable().write_manifest(1, {42, 43});
      rank.barrier();  // dies at its first collective entry
      FAIL() << "rank 1 outlived its scheduled crash";
    }
    while (rank.is_alive_now(1)) rank.rpc().progress();
    EXPECT_EQ(rank.durable().manifest(1), (DurableStore::Bytes{42, 43}));
  });
}
