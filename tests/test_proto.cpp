// Tests for the backend-agnostic coordination layer (src/proto): round
// planning edge cases, pull indexing/dedup, batching, windowing, and the
// unified exchange plan — including the budget == full-exchange boundary
// where the plan collapses to one superstep, cross-checked against
// sim::single_round_capacity.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "proto/config.hpp"
#include "proto/exchange_plan.hpp"
#include "proto/pull_index.hpp"
#include "proto/round_planner.hpp"
#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::proto;

namespace {

std::uint64_t plan_total(const RoundPlan& plan) {
  std::uint64_t total = 0;
  for (const Round& round : plan.rounds) total += round.bytes;
  return total;
}

}  // namespace

// ---------- rounds_needed ----------

TEST(RoundsNeeded, ZeroBytesNeedsZeroRounds) {
  EXPECT_EQ(rounds_needed(0, 1 << 20), 0u);
}

TEST(RoundsNeeded, CeilDivision) {
  EXPECT_EQ(rounds_needed(100, 100), 1u);
  EXPECT_EQ(rounds_needed(101, 100), 2u);
  EXPECT_EQ(rounds_needed(1, 100), 1u);
  EXPECT_EQ(rounds_needed(1000, 100), 10u);
}

TEST(RoundsNeeded, ZeroBudgetTreatedAsOneByte) {
  EXPECT_EQ(rounds_needed(5, 0), 5u);
}

// ---------- plan_rounds ----------

TEST(RoundPlanner, EvenSplitConservesBytesAndOrder) {
  // Two destinations, uneven queues; 3 rounds.
  const std::vector<std::vector<std::uint64_t>> serve = {{10, 10, 10, 10}, {30, 30}};
  const RoundPlan plan = plan_rounds(serve, 3);
  ASSERT_EQ(plan.nrounds(), 3u);
  EXPECT_EQ(plan_total(plan), 100u);
  // FIFO: per-destination counts across rounds sum to the queue lengths.
  std::uint32_t d0 = 0, d1 = 0;
  for (const Round& round : plan.rounds) {
    d0 += round.per_dest[0];
    d1 += round.per_dest[1];
  }
  EXPECT_EQ(d0, 4u);
  EXPECT_EQ(d1, 2u);
}

TEST(RoundPlanner, BudgetBelowLargestReadStillSchedules) {
  // One read far bigger than the budget: rounds_needed explodes, but the
  // plan must still ship the read (reads are atomic) and leave trailing
  // rounds empty rather than losing bytes or aborting.
  const std::vector<std::vector<std::uint64_t>> serve = {{1000}};
  const std::uint64_t nrounds = rounds_needed(1000, 64);  // 16 rounds
  const RoundPlan plan = plan_rounds(serve, nrounds);
  ASSERT_EQ(plan.nrounds(), 16u);
  EXPECT_EQ(plan_total(plan), 1000u);
  EXPECT_EQ(plan.rounds[0].per_dest[0], 1u);  // the read goes in round 0
  for (std::size_t t = 1; t < plan.nrounds(); ++t) EXPECT_EQ(plan.rounds[t].bytes, 0u);
}

TEST(RoundPlanner, RankWithNothingToServeStillJoinsEveryRound) {
  // A rank can owe nothing (zero tasks pulled *from* it) while the global
  // round count is > 1: its plan is all-empty rounds — it still joins the
  // collectives, it just ships no payload.
  const std::vector<std::vector<std::uint64_t>> serve = {{}, {}};
  const RoundPlan plan = plan_rounds(serve, 4);
  ASSERT_EQ(plan.nrounds(), 4u);
  for (const Round& round : plan.rounds) {
    EXPECT_EQ(round.bytes, 0u);
    EXPECT_EQ(round.per_dest[0] + round.per_dest[1], 0u);
  }
}

TEST(RoundPlanner, RoundsAreBalanced) {
  // 64 equal reads across 4 destinations into 4 rounds: the even-split
  // target keeps every round near total/nrounds.
  std::vector<std::vector<std::uint64_t>> serve(4);
  for (auto& queue : serve) queue.assign(16, 100);
  const RoundPlan plan = plan_rounds(serve, 4);
  for (const Round& round : plan.rounds) {
    EXPECT_GE(round.bytes, 1500u);
    EXPECT_LE(round.bytes, 1700u);
  }
}

// ---------- PullIndex ----------

TEST(PullIndexTest, SeparatesLocalFromRemoteAndDedups) {
  PullIndex index;
  // me = 0; reads 0,1 owned by 0; reads 10,11 owned by 1.
  index.add_task(0, 0, 1, 0, 0, 0);      // both local
  index.add_task(1, 0, 10, 0, 1, 0, 8);  // pulls 10
  index.add_task(2, 1, 10, 0, 1, 0, 8);  // needs 10 again: no new pull
  index.add_task(3, 11, 1, 1, 0, 0, 4);  // remote read on the a side
  index.finalize();

  ASSERT_EQ(index.local_tasks().size(), 1u);
  EXPECT_EQ(index.local_tasks()[0], 0u);
  ASSERT_EQ(index.pulls().size(), 2u);
  EXPECT_EQ(index.pulls()[0].read, 10u);  // ascending read order
  EXPECT_EQ(index.pulls()[1].read, 11u);
  EXPECT_EQ(index.pulls()[0].owner, 1u);
  EXPECT_EQ(index.pull_bytes(), 12u);

  ASSERT_EQ(index.tasks_for(10).size(), 2u);
  EXPECT_TRUE(index.tasks_for(99).empty());

  const auto needed = index.needed_by_owner(2);
  EXPECT_TRUE(needed[0].empty());
  ASSERT_EQ(needed[1].size(), 2u);
  EXPECT_EQ(needed[1][0], 10u);

  const auto counts = index.pulls_per_owner(2);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(PullIndexTest, OwnerInvariantViolationAborts) {
  PullIndex index;
  EXPECT_DEATH(index.add_task(0, 5, 6, 1, 2, /*me=*/0), "owner invariant");
}

// ---------- batching ----------

TEST(Batching, BatchOneIsOneMessagePerPullInInputOrder) {
  const std::vector<PullRequest> pulls = {{10, 1, 0}, {20, 2, 0}, {11, 1, 0}};
  const auto batches = batch_pulls(pulls, 1);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].reads, std::vector<std::uint32_t>{10});
  EXPECT_EQ(batches[1].reads, std::vector<std::uint32_t>{20});
  EXPECT_EQ(batches[2].reads, std::vector<std::uint32_t>{11});
}

TEST(Batching, FillsPerOwnerAndFlushesLeftoversAscending) {
  const std::vector<PullRequest> pulls = {{1, 2, 0}, {2, 1, 0}, {3, 2, 0},
                                          {4, 2, 0}, {5, 0, 0}};
  const auto batches = batch_pulls(pulls, 2);
  // Owner 2 fills a batch of {1,3} first; leftovers flush as owners 0,1,2.
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].owner, 2u);
  EXPECT_EQ(batches[0].reads, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(batches[1].owner, 0u);
  EXPECT_EQ(batches[2].owner, 1u);
  EXPECT_EQ(batches[3].owner, 2u);
  EXPECT_EQ(batches[3].reads, std::vector<std::uint32_t>{4});
}

TEST(Batching, MessageCountMatchesBatchList) {
  const std::vector<PullRequest> pulls = {{1, 2, 0}, {2, 1, 0}, {3, 2, 0},
                                          {4, 2, 0}, {5, 0, 0}};
  for (const std::size_t batch : {1, 2, 3, 100}) {
    std::vector<std::uint64_t> per_owner(3, 0);
    for (const auto& pull : pulls) ++per_owner[pull.owner];
    EXPECT_EQ(batched_message_count(per_owner, batch), batch_pulls(pulls, batch).size());
  }
}

// ---------- RequestWindow ----------

TEST(Window, EnforcesLimitAndCountsIssues) {
  RequestWindow window(2);
  EXPECT_TRUE(window.can_issue());
  window.on_issue();
  window.on_issue();
  EXPECT_FALSE(window.can_issue());
  window.on_reply();
  EXPECT_TRUE(window.can_issue());
  window.on_issue();
  EXPECT_EQ(window.issued(), 3u);
  EXPECT_EQ(window.in_flight(), 2u);
}

TEST(Window, ZeroLimitClampsToOne) {
  RequestWindow window(0);
  EXPECT_EQ(window.limit(), 1u);
}

TEST(Window, ThrottleBoundaryAtExactlyLimitOutstanding) {
  // Regression for the throttle boundary: with in_flight == limit the
  // window must be closed (not off-by-one open), one reply must open
  // exactly one slot, and in_flight must never exceed limit through a
  // long issue/reply interleave.
  constexpr std::size_t kLimit = 8;
  RequestWindow window(kLimit);
  for (std::size_t i = 0; i < kLimit; ++i) {
    EXPECT_TRUE(window.can_issue()) << "slot " << i;
    window.on_issue();
  }
  EXPECT_EQ(window.in_flight(), kLimit);
  EXPECT_FALSE(window.can_issue());  // limit == outstanding: closed
  window.on_reply();
  EXPECT_EQ(window.in_flight(), kLimit - 1);
  EXPECT_TRUE(window.can_issue());  // exactly one slot opened
  window.on_issue();
  EXPECT_FALSE(window.can_issue());
  // Sustained steady state at the boundary: reply/issue pairs keep the
  // window saturated but never oversubscribed.
  for (int step = 0; step < 100; ++step) {
    window.on_reply();
    ASSERT_TRUE(window.can_issue());
    window.on_issue();
    ASSERT_EQ(window.in_flight(), kLimit);
    ASSERT_FALSE(window.can_issue());
  }
  EXPECT_EQ(window.issued(), kLimit + 1 + 100);
}

TEST(Window, ReplyUnderflowIsClamped) {
  RequestWindow window(2);
  window.on_reply();  // stray reply with nothing in flight
  EXPECT_EQ(window.in_flight(), 0u);
  EXPECT_TRUE(window.can_issue());
}

// ---------- effective_round_budget ----------

TEST(Budget, ExplicitBudgetHonoredExactly) {
  ProtoConfig config;
  config.bsp_round_budget = 4'096;  // below kMinDerivedBudget on purpose
  EXPECT_EQ(effective_round_budget(config, 1ull << 30, 0), 4'096u);
}

TEST(Budget, DerivedBudgetIsCapacityMinusResidentWithFloor) {
  ProtoConfig config;  // bsp_round_budget = 0: derive
  EXPECT_EQ(effective_round_budget(config, 100ull << 20, 36ull << 20), 64ull << 20);
  // Resident swallows capacity: floored, never zero.
  EXPECT_GE(effective_round_budget(config, 1ull << 20, 2ull << 20), kMinDerivedBudget);
  // Unknown capacity: the documented default.
  EXPECT_EQ(effective_round_budget(config, 0, 0), kDefaultBspRoundBudget);
}

// ---------- plan_exchange ----------

TEST(ExchangePlanTest, SingleRankWorldHasNoExchange) {
  std::vector<RankExchangeInput> ranks(1);
  ranks[0].budget = 1 << 20;  // nothing to pull or serve
  const ExchangePlan plan = plan_exchange(ranks, ProtoConfig{});
  EXPECT_EQ(plan.rounds, 0u);
  EXPECT_EQ(plan.bsp_messages, 0u);
  EXPECT_EQ(plan.async_messages, 0u);
  EXPECT_EQ(plan.exchange_bytes, 0u);
}

TEST(ExchangePlanTest, RoundsAreGlobalMaxOverRanks) {
  std::vector<RankExchangeInput> ranks(3);
  ranks[0] = {100, 100, {}, 100};  // 2 rounds
  ranks[1] = {500, 100, {}, 100};  // 6 rounds — the straggler decides
  ranks[2] = {0, 0, {}, 100};      // zero tasks on this rank
  const ExchangePlan plan = plan_exchange(ranks, ProtoConfig{});
  EXPECT_EQ(plan.rounds, 6u);
  EXPECT_EQ(plan.bsp_messages, 6u * 3 * 3);
  EXPECT_EQ(plan.exchange_bytes, 600u);
}

TEST(ExchangePlanTest, BudgetEqualToFullExchangeIsOneRound) {
  std::vector<RankExchangeInput> ranks(2);
  ranks[0] = {300, 200, {}, 500};  // budget == pull + serve exactly
  ranks[1] = {200, 300, {}, 500};
  const ExchangePlan plan = plan_exchange(ranks, ProtoConfig{});
  EXPECT_EQ(plan.rounds, 1u);
}

TEST(ExchangePlanTest, SingleRoundCapacityMatchesSimBoundary) {
  // Derive the budget from exactly the capacity sim::single_round_capacity
  // reports: the shared planner must agree it is a one-superstep exchange —
  // and must not at capacity - 1.
  const auto workload = [] {
    wl::TaskModelParams params;
    params.n_reads = 2'000;
    params.n_tasks = 20'000;
    params.mean_length = 4'000;
    return wl::generate_sim_workload(params, 1);
  }();
  const sim::MachineParams machine = sim::cori_knl(2);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  const std::uint64_t capacity = sim::single_round_capacity(assignment);

  core::CostCalibration calibration;
  calibration.cells_per_second = 2e8;
  calibration.overhead_per_task = 3e-6;
  sim::SimOptions options;
  options.calibration = calibration;
  options.proto.bsp_round_budget = 0;  // derive from memory

  sim::MachineParams exact = machine;
  exact.memory_per_core = capacity;
  EXPECT_EQ(sim::simulate_bsp(exact, assignment, options).rounds, 1u);

  sim::MachineParams short_by_one = machine;
  short_by_one.memory_per_core = capacity - 1;
  EXPECT_GT(sim::simulate_bsp(short_by_one, assignment, options).rounds, 1u);
}

// ---------- compute_threads plumbing ----------

TEST(ProtoConfig, ComputeThreadsFromEnv) {
  unsetenv("GNB_COMPUTE_THREADS");
  EXPECT_EQ(compute_threads_from_env(1), 1u);
  EXPECT_EQ(compute_threads_from_env(3), 3u);  // fallback passes through
  setenv("GNB_COMPUTE_THREADS", "4", 1);
  EXPECT_EQ(compute_threads_from_env(1), 4u);
  setenv("GNB_COMPUTE_THREADS", "0", 1);  // zero is not a thread count
  EXPECT_EQ(compute_threads_from_env(2), 2u);
  setenv("GNB_COMPUTE_THREADS", "junk", 1);
  EXPECT_EQ(compute_threads_from_env(2), 2u);
  setenv("GNB_COMPUTE_THREADS", "", 1);
  EXPECT_EQ(compute_threads_from_env(5), 5u);
  unsetenv("GNB_COMPUTE_THREADS");
}

TEST(ProtoConfig, ComputeThreadsDefaultsSerial) {
  unsetenv("GNB_COMPUTE_THREADS");  // the default is env-seeded
  const ProtoConfig config;
  EXPECT_EQ(config.compute_threads, 1u);
  EXPECT_GT(config.read_cache_bytes, 0u);  // caching on by default
}

TEST(ProtoConfig, ComputeThreadsDefaultSeededFromEnv) {
  // The CI hook: exporting GNB_COMPUTE_THREADS drives every
  // default-constructed config (and with it the whole default-config test
  // matrix) through the worker pool.
  setenv("GNB_COMPUTE_THREADS", "4", 1);
  const ProtoConfig from_env;
  EXPECT_EQ(from_env.compute_threads, 4u);
  unsetenv("GNB_COMPUTE_THREADS");
  const ProtoConfig serial;
  EXPECT_EQ(serial.compute_threads, 1u);
}

// ---------- wire compression knob ----------

TEST(WireConfig, ParseRoundTripsEveryMode) {
  for (const WireCompression mode :
       {WireCompression::kOff, WireCompression::kPack2, WireCompression::kPack2Rle,
        WireCompression::kAuto}) {
    const auto parsed = parse_wire_compression(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_wire_compression("gzip").has_value());
  EXPECT_FALSE(parse_wire_compression("").has_value());
}

TEST(WireConfig, DefaultSeededFromEnv) {
  // The CI hook: exporting GNB_WIRE_COMPRESSION drives every
  // default-constructed config (and with it the fuzz-parity and chaos
  // matrices) through one codec.
  setenv("GNB_WIRE_COMPRESSION", "pack2-rle", 1);
  const ProtoConfig forced;
  EXPECT_EQ(forced.wire_compression, WireCompression::kPack2Rle);
  setenv("GNB_WIRE_COMPRESSION", "junk", 1);
  EXPECT_EQ(wire_compression_from_env(WireCompression::kOff), WireCompression::kOff);
  unsetenv("GNB_WIRE_COMPRESSION");
  const ProtoConfig config;
  EXPECT_EQ(config.wire_compression, WireCompression::kAuto);
}

// ---------- node-grouped request window ----------

TEST(Window, NodeGroupingCapsPerNodeShare) {
  RequestWindow window(8, 4);  // 8 outstanding over 4 nodes: 2 per node
  EXPECT_TRUE(window.grouped());
  EXPECT_EQ(window.node_limit(), 2u);
  window.on_issue(0);
  window.on_issue(0);
  EXPECT_FALSE(window.can_issue(0)) << "node 0 at its share";
  EXPECT_TRUE(window.can_issue(1)) << "other nodes unaffected";
  window.on_reply(0);
  EXPECT_TRUE(window.can_issue(0));
  EXPECT_EQ(window.node_in_flight(0), 1u);
}

TEST(Window, NodeGroupingStillHonorsGlobalLimit) {
  RequestWindow window(4, 2);  // 2 per node, 4 global
  window.on_issue(0);
  window.on_issue(0);
  window.on_issue(1);
  window.on_issue(1);
  EXPECT_FALSE(window.can_issue(0));
  EXPECT_FALSE(window.can_issue(1));
  EXPECT_EQ(window.in_flight(), 4u);
}

TEST(Window, NodeShareNeverRoundsToZero) {
  RequestWindow window(2, 8);  // more nodes than slots
  EXPECT_EQ(window.node_limit(), 1u);
  EXPECT_TRUE(window.can_issue(7));
}

TEST(Window, SingleNodeStaysFlat) {
  RequestWindow window(4, 1);
  EXPECT_FALSE(window.grouped());
  EXPECT_TRUE(window.can_issue());
}

// ---------- plan_node_exchange ----------

namespace {

/// 4 ranks on 2 nodes (rpn = 2). Ranks 0 and 1 both pull read 10 from
/// rank 2 (cross-node: proxied), rank 0 pulls read 11 from rank 1
/// (same node: direct), rank 3 pulls read 12 from rank 0 (cross-node).
NodePlanInput two_node_input() {
  NodePlanInput input;
  input.ranks_per_node = 2;
  input.pulls.resize(4);
  input.pulls[0].push_back(PullRequest{10, 2, 100, 400});
  input.pulls[1].push_back(PullRequest{10, 2, 100, 400});
  input.pulls[0].push_back(PullRequest{11, 1, 50, 200});
  input.pulls[3].push_back(PullRequest{12, 0, 70, 280});
  return input;
}

}  // namespace

TEST(NodeExchange, ProxyDedupsCrossNodePulls) {
  const NodeExchangePlan plan = plan_node_exchange(two_node_input(), ProtoConfig{});
  // Totals are conserved: every requester still gets its frame.
  EXPECT_EQ(plan.exchange_bytes, 100u + 100 + 50 + 70);
  EXPECT_EQ(plan.raw_bytes, 400u + 400 + 200 + 280);
  // Read 10 crosses the NIC once (rank 0 is the proxy), read 12 once;
  // rank 1's copy of read 10 and the same-node read 11 ride intra-node.
  EXPECT_EQ(plan.inter_node_bytes, 100u + 70);
  EXPECT_EQ(plan.flat_inter_node_bytes, 100u + 100 + 70);
  EXPECT_EQ(plan.intra_node_bytes, 100u + 50);
  EXPECT_LE(plan.inter_node_bytes, plan.flat_inter_node_bytes);
  EXPECT_EQ(plan.inter_node_bytes + plan.intra_node_bytes, plan.exchange_bytes);
  // Two ordered node pairs are active: node1->node0 (read 10) and
  // node0->node1 (read 12).
  EXPECT_EQ(plan.rounds, 1u);
  EXPECT_EQ(plan.node_messages, 2u);
  EXPECT_EQ(plan.bsp_messages, 2u * 4 * 4);  // main + forward alltoallv
}

TEST(NodeExchange, FlatGroupingMatchesPlanExchange) {
  // rpn = 1 degenerates to the flat exchange: no proxies, no forwards,
  // inter-node equals the flat split.
  NodePlanInput input = two_node_input();
  input.ranks_per_node = 1;
  const NodeExchangePlan plan = plan_node_exchange(input, ProtoConfig{});
  EXPECT_EQ(plan.exchange_bytes, 100u + 100 + 50 + 70);
  // Every pull crosses "nodes" now (each rank is its own node).
  EXPECT_EQ(plan.inter_node_bytes, plan.flat_inter_node_bytes);
  EXPECT_EQ(plan.intra_node_bytes, 0u);
}

TEST(NodeExchange, RoundsBudgetOnlyDedupedDirectTraffic) {
  NodePlanInput input = two_node_input();
  // Busiest rank is 0: direct pulls 100 (read 10, as proxy) + 50 (read
  // 11, same node) plus a direct serve of 70 (read 12) = 220 bytes. A
  // 100-byte budget makes that 3 rounds; rank 1's forwarded copy of read
  // 10 rides along without inflating the count (else rank 2 would serve
  // 200 and the budget arithmetic would diverge from the engine's).
  input.budgets.assign(4, 100);
  const NodeExchangePlan plan = plan_node_exchange(input, ProtoConfig{});
  EXPECT_EQ(plan.rounds, 3u);
}

TEST(NodeExchange, SelfPullAborts) {
  NodePlanInput input;
  input.ranks_per_node = 2;
  input.pulls.resize(2);
  input.pulls[0].push_back(PullRequest{5, 0, 10, 40});
  EXPECT_DEATH(plan_node_exchange(input, ProtoConfig{}), "pulls its own read");
}
