// Unit and property tests for gnb_wl: genome generation, read sampling
// with the sequencer error model, the ground-truth oracle, dataset presets
// and the statistical task model.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <unordered_set>

#include "kmer/counter.hpp"
#include "wl/genome.hpp"
#include "wl/presets.hpp"
#include "wl/sampler.hpp"
#include "wl/task_model.hpp"

using namespace gnb;
using namespace gnb::wl;

// ---------- genome ----------

TEST(Genome, HasRequestedLength) {
  Xoshiro256 rng(1);
  GenomeParams params;
  params.length = 12345;
  params.repeat_fraction = 0;
  EXPECT_EQ(generate_genome(params, rng).size(), 12345u);
}

TEST(Genome, DeterministicForSeed) {
  GenomeParams params;
  params.length = 5000;
  Xoshiro256 rng1(42), rng2(42);
  EXPECT_EQ(generate_genome(params, rng1), generate_genome(params, rng2));
}

TEST(Genome, AllFourBasesAppear) {
  Xoshiro256 rng(2);
  GenomeParams params;
  params.length = 10000;
  const auto codes = generate_genome(params, rng).unpack();
  std::array<int, 4> counts{};
  for (auto code : codes) ++counts[code];
  for (int count : counts) EXPECT_GT(count, 2000);
}

TEST(Genome, RepeatsRaiseKmerMultiplicity) {
  Xoshiro256 rng1(3), rng2(3);
  GenomeParams plain;
  plain.length = 50000;
  plain.repeat_fraction = 0;
  GenomeParams repetitive = plain;
  repetitive.repeat_fraction = 0.3;
  repetitive.repeat_length = 800;

  auto max_multiplicity = [](const seq::Sequence& genome) {
    kmer::KmerCounter counter;
    counter.count_reads({seq::Read{0, "g", genome}}, 21);
    std::uint64_t best = 0;
    for (const auto& [km, n] : counter.counts()) best = std::max(best, n);
    return best;
  };
  EXPECT_GT(max_multiplicity(generate_genome(repetitive, rng2)),
            max_multiplicity(generate_genome(plain, rng1)));
}

// ---------- read sampling ----------

TEST(Sampler, CoverageApproximatelyMet) {
  Xoshiro256 rng(5);
  GenomeParams gp;
  gp.length = 30000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 12;
  rp.mean_length = 900;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  const double achieved =
      static_cast<double>(ds.reads.total_bases()) / static_cast<double>(genome.size());
  EXPECT_NEAR(achieved, 12.0, 2.5);
}

TEST(Sampler, OriginsMatchReadCount) {
  Xoshiro256 rng(6);
  GenomeParams gp;
  gp.length = 20000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 5;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  EXPECT_EQ(ds.reads.size(), ds.origins.size());
  for (const auto& origin : ds.origins) {
    EXPECT_LT(origin.genome_begin, origin.genome_end);
    EXPECT_LE(origin.genome_end, genome.size());
  }
}

TEST(Sampler, ErrorFreeReadsMatchReference) {
  Xoshiro256 rng(7);
  GenomeParams gp;
  gp.length = 20000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 3;
  rp.error_rate = 0;
  rp.n_rate = 0;
  rp.shuffle = false;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  ASSERT_GT(ds.reads.size(), 0u);
  for (std::size_t i = 0; i < ds.reads.size(); ++i) {
    const auto& origin = ds.origins[i];
    seq::Sequence fragment =
        genome.subseq(origin.genome_begin, origin.genome_end - origin.genome_begin);
    if (origin.reverse_strand) fragment = fragment.reverse_complement();
    EXPECT_EQ(ds.reads.get(static_cast<seq::ReadId>(i)).sequence, fragment);
  }
}

TEST(Sampler, ErrorRateChangesContent) {
  Xoshiro256 rng(8);
  GenomeParams gp;
  gp.length = 15000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams noisy;
  noisy.coverage = 2;
  noisy.error_rate = 0.25;
  noisy.shuffle = false;
  const SampledDataset ds = sample_reads(genome, noisy, rng);
  bool any_differs = false;
  for (std::size_t i = 0; i < ds.reads.size() && !any_differs; ++i) {
    const auto& origin = ds.origins[i];
    seq::Sequence fragment =
        genome.subseq(origin.genome_begin, origin.genome_end - origin.genome_begin);
    if (origin.reverse_strand) fragment = fragment.reverse_complement();
    any_differs = !(ds.reads.get(static_cast<seq::ReadId>(i)).sequence == fragment);
  }
  EXPECT_TRUE(any_differs);
}

TEST(Sampler, LengthsRespectClamps) {
  Xoshiro256 rng(9);
  GenomeParams gp;
  gp.length = 40000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 4;
  rp.mean_length = 800;
  rp.min_length = 400;
  rp.max_length = 1600;
  rp.error_rate = 0;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  for (const auto& origin : ds.origins) {
    const std::size_t span = origin.genome_end - origin.genome_begin;
    EXPECT_GE(span, 400u);
    EXPECT_LE(span, 1600u);
  }
}

TEST(Sampler, BothStrandsSampled) {
  Xoshiro256 rng(10);
  GenomeParams gp;
  gp.length = 30000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 8;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  std::size_t reverse = 0;
  for (const auto& origin : ds.origins) reverse += origin.reverse_strand ? 1 : 0;
  EXPECT_GT(reverse, ds.origins.size() / 5);
  EXPECT_LT(reverse, 4 * ds.origins.size() / 5);
}

TEST(Sampler, NRateInsertsNs) {
  Xoshiro256 rng(11);
  GenomeParams gp;
  gp.length = 20000;
  const auto genome = generate_genome(gp, rng);
  ReadSimParams rp;
  rp.coverage = 3;
  rp.error_rate = 0;
  rp.n_rate = 0.05;
  const SampledDataset ds = sample_reads(genome, rp, rng);
  std::size_t n_total = 0;
  for (const auto& read : ds.reads.reads()) n_total += read.sequence.n_count();
  EXPECT_GT(n_total, ds.reads.total_bases() / 100);
}

TEST(TrueOverlap, IntersectionSemantics) {
  const ReadOrigin a{100, 500, false};
  const ReadOrigin b{400, 900, true};
  const ReadOrigin c{600, 700, false};
  EXPECT_EQ(true_overlap(a, b), 100u);
  EXPECT_EQ(true_overlap(b, a), 100u);  // symmetric
  EXPECT_EQ(true_overlap(a, c), 0u);    // disjoint
  EXPECT_EQ(true_overlap(a, a), 400u);  // self
}

// ---------- task model ----------

class TaskModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaskModel, ExactCountsAndInvariants) {
  TaskModelParams params;
  params.n_reads = 500;
  params.n_tasks = 4000;
  const SimWorkload w = generate_sim_workload(params, GetParam());
  EXPECT_EQ(w.read_lengths.size(), 500u);
  EXPECT_EQ(w.tasks.size(), 4000u);
  std::unordered_set<std::uint64_t> pairs;
  for (const auto& task : w.tasks) {
    EXPECT_LT(task.a, task.b);
    EXPECT_LT(task.b, 500u);
    EXPECT_GE(task.cells, 1u);
    EXPECT_TRUE(pairs.insert((static_cast<std::uint64_t>(task.a) << 32) | task.b).second)
        << "duplicate pair";
  }
}

TEST_P(TaskModel, DeterministicInSeed) {
  TaskModelParams params;
  params.n_reads = 300;
  params.n_tasks = 2000;
  const SimWorkload w1 = generate_sim_workload(params, GetParam());
  const SimWorkload w2 = generate_sim_workload(params, GetParam());
  ASSERT_EQ(w1.tasks.size(), w2.tasks.size());
  for (std::size_t i = 0; i < w1.tasks.size(); ++i) {
    EXPECT_EQ(w1.tasks[i].a, w2.tasks[i].a);
    EXPECT_EQ(w1.tasks[i].b, w2.tasks[i].b);
    EXPECT_EQ(w1.tasks[i].cells, w2.tasks[i].cells);
  }
  EXPECT_EQ(w1.read_lengths, w2.read_lengths);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskModel, ::testing::Values(1u, 42u, 1337u));

TEST(TaskModel, DifferentSeedsDiffer) {
  TaskModelParams params;
  params.n_reads = 300;
  params.n_tasks = 2000;
  const SimWorkload w1 = generate_sim_workload(params, 1);
  const SimWorkload w2 = generate_sim_workload(params, 2);
  bool differs = w1.read_lengths != w2.read_lengths;
  for (std::size_t i = 0; i < w1.tasks.size() && !differs; ++i)
    differs = w1.tasks[i].a != w2.tasks[i].a || w1.tasks[i].cells != w2.tasks[i].cells;
  EXPECT_TRUE(differs);
}

TEST(TaskModel, MeanLengthApproximatelyRequested) {
  TaskModelParams params;
  params.n_reads = 20000;
  params.n_tasks = 1000;
  params.mean_length = 5000;
  const SimWorkload w = generate_sim_workload(params, 5);
  const double mean =
      static_cast<double>(w.total_bases()) / static_cast<double>(w.read_lengths.size());
  EXPECT_NEAR(mean, 5000.0, 300.0);
}

TEST(TaskModel, HigherErrorMeansCostlierTrueTasks) {
  TaskModelParams low, high;
  low.n_reads = high.n_reads = 400;
  low.n_tasks = high.n_tasks = 3000;
  low.error_rate = 0.02;
  high.error_rate = 0.25;
  const auto w_low = generate_sim_workload(low, 9);
  const auto w_high = generate_sim_workload(high, 9);
  EXPECT_GT(w_high.total_cells(), w_low.total_cells());
}

TEST(TaskModel, FalsePositivesAreCheap) {
  TaskModelParams params;
  params.n_reads = 400;
  params.n_tasks = 3000;
  params.fp_rate = 0.5;
  const SimWorkload w = generate_sim_workload(params, 11);
  std::size_t cheap = 0, expensive = 0;
  for (const auto& task : w.tasks) {
    if (task.cells < 3 * static_cast<std::uint64_t>(params.fp_cells)) ++cheap;
    if (task.cells > 20 * static_cast<std::uint64_t>(params.fp_cells)) ++expensive;
  }
  EXPECT_GT(cheap, w.tasks.size() / 5);
  EXPECT_GT(expensive, w.tasks.size() / 10);
}

TEST(TaskModel, DegreeCapHolds) {
  TaskModelParams params;
  params.n_reads = 300;
  params.n_tasks = 5000;
  params.fp_rate = 0.8;
  params.hot_task_frac = 0.9;
  const SimWorkload w = generate_sim_workload(params, 13);
  const double mean_degree = 2.0 * 5000 / 300;
  std::vector<std::uint32_t> degree(300, 0);
  for (const auto& task : w.tasks) {
    ++degree[task.a];
    ++degree[task.b];
  }
  const auto cap = static_cast<std::uint32_t>(8.0 * mean_degree + 16.0);
  // True-overlap tasks are not capped; allow headroom over the FP cap.
  for (auto d : degree) EXPECT_LE(d, 2 * cap);
}

TEST(TaskModel, ReadBytesFormula) {
  TaskModelParams params;
  params.n_reads = 10;
  params.n_tasks = 5;
  const SimWorkload w = generate_sim_workload(params, 15);
  for (std::uint32_t i = 0; i < 10; ++i)
    EXPECT_EQ(w.read_bytes(i), 16u + w.read_lengths[i]);
}

// ---------- presets ----------

TEST(Presets, PaperReferenceValues) {
  const auto specs = paper_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].paper_reads, 16890u);
  EXPECT_EQ(specs[1].paper_tasks, 24869171u);
  EXPECT_EQ(specs[2].paper_reads, 1148839u);
  const double ratio = static_cast<double>(specs[1].paper_tasks) /
                       static_cast<double>(specs[0].paper_tasks);
  EXPECT_NEAR(ratio, 11.0, 0.3);
}

TEST(Presets, ModelWorkloadScalesCounts) {
  const auto spec = ecoli30x_spec();
  const SimWorkload w = model_workload(spec, 20, 1);
  EXPECT_NEAR(static_cast<double>(w.read_lengths.size()),
              static_cast<double>(spec.model.n_reads) / 20.0, 1.0);
  EXPECT_NEAR(static_cast<double>(w.tasks.size()),
              static_cast<double>(spec.model.n_tasks) / 20.0, 1.0);
}

TEST(TaskModel, InfeasibleTargetClampsInsteadOfSpinning) {
  // More tasks requested than C(n,2) distinct pairs exist: the generator
  // must terminate and produce at most the feasible number.
  TaskModelParams params;
  params.n_reads = 40;  // C(40,2) = 780
  params.n_tasks = 10000;
  const SimWorkload w = generate_sim_workload(params, 3);
  EXPECT_LE(w.tasks.size(), 780u);
  EXPECT_GT(w.tasks.size(), 300u);  // still fills most of the feasible set
}

TEST(Presets, TinySynthesizesQuickly) {
  const SampledDataset ds = synthesize(tiny_spec(), 77);
  EXPECT_GT(ds.reads.size(), 50u);
  EXPECT_LT(ds.reads.size(), 5000u);
}

TEST(Presets, SynthesizeDeterministic) {
  const SampledDataset a = synthesize(tiny_spec(), 5);
  const SampledDataset b = synthesize(tiny_spec(), 5);
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (std::size_t i = 0; i < a.reads.size(); ++i)
    EXPECT_EQ(a.reads.get(static_cast<seq::ReadId>(i)).sequence,
              b.reads.get(static_cast<seq::ReadId>(i)).sequence);
}
