// Tests for the observability layer (src/obs): span tracer semantics
// (nesting, ring capacity, thread safety), Chrome-trace JSON schema
// validation, sim-vs-real span-name parity on one small workload,
// determinism of the event sequence across identically-seeded runs, the
// metrics registry, and the FaultCounters descriptor-table export.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "stat/breakdown.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

/// A comparable, timestamp-free digest of one event.
using EventKey = std::tuple<std::string, int, std::string, std::uint64_t, std::uint64_t>;

EventKey key_of(const obs::TraceEvent& e) {
  return {e.name, static_cast<int>(e.phase), e.key0 != nullptr ? e.key0 : "", e.val0, e.id};
}

/// Snapshot every track of the global tracer as (pid, tid, events) before
/// disable() invalidates the buffers.
struct TrackSnapshot {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::vector<obs::TraceEvent> events;
};

std::vector<TrackSnapshot> snapshot_tracks() {
  std::vector<TrackSnapshot> tracks;
  for (const obs::TraceBuffer* buf : obs::Tracer::instance().buffers()) {
    TrackSnapshot t;
    t.pid = buf->pid();
    t.tid = buf->tid();
    t.events.assign(buf->events().begin(), buf->events().end());
    tracks.push_back(std::move(t));
  }
  return tracks;
}

/// Span-taxonomy of a snapshot: names of all duration-like events (B/E/X
/// spans and b/e async ops); instants and counters are excluded, since
/// fault instants only fire under injection.
std::set<std::string> span_names(const std::vector<TrackSnapshot>& tracks) {
  std::set<std::string> names;
  for (const TrackSnapshot& t : tracks) {
    for (const obs::TraceEvent& e : t.events) {
      switch (e.phase) {
        case obs::TraceEvent::Phase::kBegin:
        case obs::TraceEvent::Phase::kEnd:
        case obs::TraceEvent::Phase::kComplete:
        case obs::TraceEvent::Phase::kAsyncBegin:
        case obs::TraceEvent::Phase::kAsyncEnd:
          names.insert(e.name);
          break;
        default:
          break;
      }
    }
  }
  return names;
}

#if GNB_TRACE_ENABLED

// ---------- real-run harness (tiny dataset, 4 ranks) ----------

struct RealRun {
  std::vector<TrackSnapshot> tracks;
  std::string json;
};

RealRun run_real(bool async_mode, std::size_t nranks = 4) {
  static const wl::SampledDataset dataset = [] {
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 12'000;
    spec.reads.coverage = 8;
    return wl::synthesize(spec, 21);
  }();
  pipeline::PipelineConfig config;
  config.k = wl::tiny_spec().k;
  const pipeline::TaskSet tasks = pipeline::run_serial(dataset.reads, config, nranks);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  rt::World world(nranks);
  core::EngineConfig engine_config;
  world.run([&](rt::Rank& rank) {
    if (async_mode) {
      core::async_align(rank, dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                        engine_config);
    } else {
      core::bsp_align(rank, dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                      engine_config);
    }
  });
  RealRun run;
  run.tracks = snapshot_tracks();
  std::ostringstream out;
  tracer.write_json(out);
  run.json = out.str();
  tracer.disable();
  return run;
}

// ---------- simulated-run harness (tiny model workload) ----------

std::vector<TrackSnapshot> run_sim(bool async_mode, std::uint64_t seed = 42) {
  const wl::SimWorkload workload = wl::model_workload(wl::tiny_spec(), 1.0, seed);
  sim::MachineParams machine = sim::cori_knl(4);
  sim::scale_slice(machine, 16.0);  // 4 cores/node -> 16 virtual ranks
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.trace = true;

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  if (async_mode) {
    sim::simulate_async(machine, assignment, options);
  } else {
    sim::simulate_bsp(machine, assignment, options);
  }
  auto tracks = snapshot_tracks();
  tracer.disable();
  return tracks;
}

// ---------- span tracer semantics ----------

TEST(Tracer, SpanMacroNestsBeginEnd) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  obs::TraceBuffer* buf = tracer.buffer(0, 0, "test", "main");
  ASSERT_NE(buf, nullptr);
  obs::Tracer::bind(buf);
  {
    GNB_SPAN("outer", "a", 1);
    {
      GNB_SPAN("inner");
      GNB_INSTANT("tick", "n", 7);
    }
  }
  obs::Tracer::bind(nullptr);
  const auto events = buf->events();
  ASSERT_EQ(events.size(), 5u);
  using Phase = obs::TraceEvent::Phase;
  EXPECT_EQ(events[0].name, std::string("outer"));
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[0].val0, 1u);
  EXPECT_EQ(events[1].name, std::string("inner"));
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].name, std::string("tick"));
  EXPECT_EQ(events[2].phase, Phase::kInstant);
  EXPECT_EQ(events[3].name, std::string("inner"));
  EXPECT_EQ(events[3].phase, Phase::kEnd);
  EXPECT_EQ(events[4].name, std::string("outer"));
  EXPECT_EQ(events[4].phase, Phase::kEnd);
  // Timestamps are monotone within one single-writer track.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  tracer.disable();
}

TEST(Tracer, MacrosAreNoopsWhenUnbound) {
  // No binding (and tracer disabled): the macros must not crash or record.
  GNB_SPAN("orphan");
  GNB_INSTANT("orphan.instant");
  GNB_COUNTER("orphan.counter", 3);
  GNB_ASYNC_BEGIN("orphan.async", 1);
  GNB_ASYNC_END("orphan.async", 1);
  EXPECT_EQ(obs::Tracer::current(), nullptr);
}

TEST(Tracer, RingDropsNewestPastCapacity) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(/*buffer_capacity=*/8);
  obs::TraceBuffer* buf = tracer.buffer(0, 0, "test", "main");
  ASSERT_NE(buf, nullptr);
  for (int i = 0; i < 20; ++i) buf->instant("e");
  EXPECT_EQ(buf->events().size(), 8u);
  EXPECT_EQ(buf->dropped(), 12u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The drop count is exported so truncation is never silent.
  std::ostringstream out;
  tracer.write_json(out);
  EXPECT_NE(out.str().find("\"dropped_events\":\"12\""), std::string::npos);
  tracer.disable();
}

TEST(Tracer, ConcurrentWritersOnDistinctTracks) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  constexpr int kThreads = 8;
  constexpr int kEvents = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      obs::TraceBuffer* buf = obs::Tracer::instance().buffer(
          static_cast<std::uint32_t>(t), 0, "worker", "main");
      ASSERT_NE(buf, nullptr);
      obs::Tracer::bind(buf);
      for (int i = 0; i < kEvents; ++i) {
        GNB_SPAN("work", "i", static_cast<std::uint64_t>(i));
        GNB_COUNTER("progress", static_cast<std::uint64_t>(i));
      }
      obs::Tracer::bind(nullptr);
    });
  for (auto& thread : threads) thread.join();
  const auto buffers = tracer.buffers();
  ASSERT_EQ(buffers.size(), static_cast<std::size_t>(kThreads));
  for (const obs::TraceBuffer* buf : buffers)
    EXPECT_EQ(buf->events().size() + buf->dropped(), 3u * kEvents);
  tracer.disable();
}

TEST(Tracer, DisabledTracerHandsOutNoBuffers) {
  obs::Tracer& tracer = obs::Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.buffer(0, 0, "p", "t"), nullptr);
  EXPECT_TRUE(tracer.buffers().empty());
}

// ---------- trace-JSON schema ----------

TEST(TraceJson, RealRunValidatesAgainstSchema) {
  for (const bool async_mode : {false, true}) {
    const RealRun run = run_real(async_mode);
    std::string error;
    EXPECT_TRUE(obs::json::validate_trace(run.json, &error))
        << (async_mode ? "async" : "bsp") << ": " << error;
  }
}

TEST(TraceJson, SimRunValidatesAgainstSchema) {
  const wl::SimWorkload workload = wl::model_workload(wl::tiny_spec(), 1.0, 42);
  sim::MachineParams machine = sim::cori_knl(4);
  sim::scale_slice(machine, 16.0);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.trace = true;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  sim::simulate_bsp(machine, assignment, options);
  sim::simulate_async(machine, assignment, options);
  std::ostringstream out;
  tracer.write_json(out);
  tracer.disable();
  std::string error;
  EXPECT_TRUE(obs::json::validate_trace(out.str(), &error)) << error;
  // Virtual tracks are labelled with their clock domain.
  EXPECT_NE(out.str().find("[virtual]"), std::string::npos);
}

// ---------- sim-vs-real span-name parity ----------

TEST(Parity, BspSpanTaxonomyMatchesSimulator) {
  const std::set<std::string> real = span_names(run_real(/*async_mode=*/false).tracks);
  const std::set<std::string> sim = span_names(run_sim(/*async_mode=*/false));
  EXPECT_EQ(real, sim);
  EXPECT_TRUE(real.count(obs::span::kBspAlign));
  EXPECT_TRUE(real.count(obs::span::kBspRound));
  EXPECT_TRUE(real.count(obs::span::kCollAlltoallv));
}

TEST(Parity, AsyncSpanTaxonomyMatchesSimulator) {
  const std::set<std::string> real = span_names(run_real(/*async_mode=*/true).tracks);
  const std::set<std::string> sim = span_names(run_sim(/*async_mode=*/true));
  EXPECT_EQ(real, sim);
  EXPECT_TRUE(real.count(obs::span::kAsyncAlign));
  EXPECT_TRUE(real.count(obs::span::kAsyncPulls));
  EXPECT_TRUE(real.count(obs::span::kRpcPull));
}

// ---------- determinism across identically-seeded runs ----------

TEST(Determinism, RealBspEventSequenceIsSeedStable) {
  // Fault-free *serial* BSP is deterministic per rank: two identical runs
  // must produce identical per-track (name, phase, args) sequences; only
  // the wall-clock timestamps may differ. Serial only: with a worker pool
  // the mid-round counter args (e.g. align.cells) reflect however many
  // batches merged by round end, which is timing-dependent — so the env
  // override is pinned off here.
  setenv("GNB_COMPUTE_THREADS", "1", 1);
  const RealRun a = run_real(/*async_mode=*/false);
  const RealRun b = run_real(/*async_mode=*/false);
  unsetenv("GNB_COMPUTE_THREADS");
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (std::size_t t = 0; t < a.tracks.size(); ++t) {
    ASSERT_EQ(a.tracks[t].pid, b.tracks[t].pid);
    ASSERT_EQ(a.tracks[t].events.size(), b.tracks[t].events.size())
        << "track pid=" << a.tracks[t].pid;
    for (std::size_t i = 0; i < a.tracks[t].events.size(); ++i)
      EXPECT_EQ(key_of(a.tracks[t].events[i]), key_of(b.tracks[t].events[i]))
          << "track pid=" << a.tracks[t].pid << " event " << i;
  }
}

TEST(Determinism, SimTraceIsByteStableIncludingVirtualTime) {
  // The simulator's clock is virtual, so even the timestamps must agree.
  const auto a = run_sim(/*async_mode=*/true, 42);
  const auto b = run_sim(/*async_mode=*/true, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].events.size(), b[t].events.size());
    for (std::size_t i = 0; i < a[t].events.size(); ++i) {
      EXPECT_EQ(key_of(a[t].events[i]), key_of(b[t].events[i]));
      EXPECT_EQ(a[t].events[i].ts_ns, b[t].events[i].ts_ns);
      EXPECT_EQ(a[t].events[i].dur_ns, b[t].events[i].dur_ns);
    }
  }
}

TEST(Determinism, JsonExportIsGloballyOrderedAndStable) {
  // write_json must emit one deterministic document for a fixed buffer
  // state: all metadata first, then every event across all tracks in one
  // globally stable (ts, pid, tid) order — so `diff` of two exports of
  // byte-identical runs is exactly empty, and re-exporting the same epoch
  // twice is byte-identical.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  // Two tracks created in reverse pid order, with interleaved virtual
  // timestamps, exercise the cross-buffer merge.
  obs::TraceBuffer* b1 = tracer.buffer(1, 0, "rank 1 [virtual]", "core 0", "virtual");
  obs::TraceBuffer* b0 = tracer.buffer(0, 0, "rank 0 [virtual]", "core 0", "virtual");
  ASSERT_NE(b0, nullptr);
  ASSERT_NE(b1, nullptr);
  auto push = [](obs::TraceBuffer* buf, obs::TraceEvent::Phase ph, std::int64_t ts) {
    obs::TraceEvent e;
    e.name = "span";
    e.phase = ph;
    e.ts_ns = ts;
    buf->push(e);
  };
  using Phase = obs::TraceEvent::Phase;
  push(b1, Phase::kBegin, 500);   // arrives first in file order...
  push(b0, Phase::kBegin, 100);   // ...but must sort first in the export
  push(b0, Phase::kEnd, 900);
  push(b1, Phase::kEnd, 900);     // same-ts tie: pid 0 before pid 1
  std::ostringstream first, second;
  tracer.write_json(first);
  tracer.write_json(second);
  tracer.disable();
  EXPECT_EQ(first.str(), second.str());

  // Parse the export back and check the global (ts, pid, tid) order.
  std::string error;
  const auto doc = obs::json::parse(first.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::tuple<double, double, double>> order;
  bool metadata_done = false;
  for (const auto& ev : events->array) {
    const auto* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      EXPECT_FALSE(metadata_done) << "metadata event after a timed event";
      continue;
    }
    metadata_done = true;
    const auto* ts = ev.find("ts");
    const auto* pid = ev.find("pid");
    const auto* tid = ev.find("tid");
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    order.emplace_back(ts->num, pid->num, tid->num);
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

#endif  // GNB_TRACE_ENABLED

// ---------- metrics registry ----------

TEST(Metrics, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.add("c", 2);
  registry.add("c", 3);
  EXPECT_EQ(registry.counter("c"), 5u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  registry.gauge_max("g", 7);
  registry.gauge_max("g", 4);  // gauges keep the max
  EXPECT_EQ(registry.gauge("g"), 7u);
  registry.observe("h", 0);
  registry.observe("h", 1);
  registry.observe("h", 1000);
  const obs::HistogramMetric* h = registry.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 1001u);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 1000u);
  EXPECT_EQ(h->buckets[0], 1u);   // v == 0
  EXPECT_EQ(h->buckets[1], 1u);   // v == 1
  EXPECT_EQ(h->buckets[10], 1u);  // 512 <= 1000 < 1024
}

TEST(Metrics, MergeAcrossRanks) {
  obs::MetricsRegistry a, b;
  a.add("c", 1);
  b.add("c", 2);
  a.gauge_max("g", 3);
  b.gauge_max("g", 9);
  a.observe("h", 4);
  b.observe("h", 8);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.gauge("g"), 9u);
  ASSERT_NE(a.histogram("h"), nullptr);
  EXPECT_EQ(a.histogram("h")->count, 2u);
  EXPECT_EQ(a.histogram("h")->sum, 12u);
}

TEST(Metrics, JsonDumpParsesAndIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.add("z.last", 1);
  registry.add("a.first", 2);
  registry.gauge_max("m.gauge", 5);
  std::ostringstream out;
  registry.write_json(out);
  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->object.size(), 2u);
  EXPECT_EQ(counters->object[0].first, "a.first");  // std::map iteration order
  EXPECT_EQ(counters->object[1].first, "z.last");
  const obs::json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->object.size(), 1u);
}

TEST(Metrics, PhaseDocumentStructure) {
  obs::MetricsRegistry pipeline, align;
  pipeline.add(obs::metric::kPipelineReads, 100);
  align.add(obs::metric::kAlignTasks, 42);
  const obs::MetricsPhase phases[] = {{"pipeline", &pipeline}, {"align", &align}};
  std::ostringstream out;
  obs::write_metrics_json(out, R"({"command":"test"})", phases);
  const auto doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.has_value());
  const obs::json::Value* run = doc->find("run");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(run->find("command"), nullptr);
  EXPECT_EQ(run->find("command")->str, "test");
  const obs::json::Value* phase_array = doc->find("phases");
  ASSERT_NE(phase_array, nullptr);
  ASSERT_EQ(phase_array->array.size(), 2u);
  EXPECT_EQ(phase_array->array[0].find("phase")->str, "pipeline");
  EXPECT_EQ(phase_array->array[1].find("phase")->str, "align");
}

// ---------- FaultCounters descriptor table ----------

TEST(FaultCounters, FieldTableDrivesMergeAndAny) {
  stat::FaultCounters a, b;
  EXPECT_FALSE(a.any());
  b.retries = 2;
  b.crashes = 1;
  b.recovery_seconds = 0.5;
  EXPECT_TRUE(b.any());
  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.crashes, 2u);
  EXPECT_DOUBLE_EQ(a.recovery_seconds, 1.0);
  // Every integer member is reachable through the descriptor table.
  EXPECT_GE(stat::FaultCounters::fields().size(), 9u);
}

TEST(FaultCounters, ExportUsesFaultPrefixedNames) {
  stat::FaultCounters faults;
  faults.retries = 3;
  faults.tasks_reexecuted = 7;
  faults.recovery_seconds = 0.25;
  obs::MetricsRegistry registry;
  stat::export_metrics(faults, registry);
  EXPECT_EQ(registry.counter("fault.retries"), 3u);
  EXPECT_EQ(registry.counter("fault.tasks_reexecuted"), 7u);
  EXPECT_EQ(registry.counter("fault.recovery_us"), 250'000u);
  // One registry entry per descriptor field (+ recovery_us).
  EXPECT_EQ(registry.counters().size(), stat::FaultCounters::fields().size() + 1);
}

// ---------- JSON utilities ----------

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::json::parse("{").has_value());
  EXPECT_FALSE(obs::json::parse("{}extra").has_value());
  EXPECT_TRUE(obs::json::parse(R"({"k":[1,2,{"n":null}]})").has_value());
}

TEST(Json, ValidateTraceCatchesUnbalancedSpans) {
  std::string error;
  EXPECT_TRUE(obs::json::validate_trace(
      R"({"traceEvents":[{"name":"s","ph":"B","ts":0,"pid":1,"tid":0},)"
      R"({"name":"s","ph":"E","ts":1,"pid":1,"tid":0}]})",
      &error))
      << error;
  EXPECT_FALSE(obs::json::validate_trace(
      R"({"traceEvents":[{"name":"s","ph":"B","ts":0,"pid":1,"tid":0}]})", &error));
}

}  // namespace
