// The long self-healing matrix (ctest label: chaos-long): partitions,
// rank restarts, and write-time checkpoint corruption — alone and
// together — crossed with both overlap engines and {2, 4, 8} ranks.
// Every cell must produce an alignment set byte-identical to the
// fault-free run: the self-healing runtime may change when and where work
// happens, never what is computed. This suite is deliberately heavy (it
// runs dozens of full engine executions); CI schedules it on the nightly
// chaos job rather than the per-push gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/fault.hpp"
#include "rt/world.hpp"
#include "stat/breakdown.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

#if defined(__SANITIZE_THREAD__)
#define GNB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GNB_TSAN_BUILD 1
#endif
#endif

struct Workload {
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
};

Workload make_workload(std::size_t ranks, std::uint64_t seed = 33) {
  Workload w;
  wl::DatasetSpec spec = wl::ecoli30x_spec();
#ifdef GNB_TSAN_BUILD
  spec.genome.length = 2'000;
#else
  spec.genome.length = 10'000;
#endif
  w.dataset = wl::synthesize(spec, seed);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  w.tasks = pipeline::run_serial(w.dataset.reads, config, ranks);
  return w;
}

struct RunOutcome {
  std::vector<align::AlignmentRecord> records;
  stat::FaultCounters faults;
};

RunOutcome run_engine(bool async_mode, std::size_t ranks, const Workload& w,
                      const rt::FaultPlan& plan = {}) {
  const core::EngineConfig config;
  rt::World world(ranks);
  if (plan.enabled()) world.set_faults(plan);
  std::vector<core::EngineResult> results(ranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                       w.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                     w.tasks.per_rank[rank.id()], config);
  });
  RunOutcome outcome;
  for (const auto& result : results)
    outcome.records.insert(outcome.records.end(), result.accepted.begin(),
                           result.accepted.end());
  for (const stat::Breakdown& b : world.breakdowns()) outcome.faults.merge(b.faults);
  std::sort(outcome.records.begin(), outcome.records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score) <
                     std::tie(y.read_a, y.read_b, y.alignment.score);
            });
  return outcome;
}

void expect_identical(const RunOutcome& chaos, const RunOutcome& clean) {
  ASSERT_EQ(chaos.records.size(), clean.records.size());
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    const align::AlignmentRecord& a = chaos.records[i];
    const align::AlignmentRecord& b = clean.records[i];
    ASSERT_EQ(a.read_a, b.read_a) << "record " << i;
    ASSERT_EQ(a.read_b, b.read_b) << "record " << i;
    EXPECT_EQ(a.alignment.score, b.alignment.score) << "record " << i;
    EXPECT_EQ(a.alignment.a_begin, b.alignment.a_begin) << "record " << i;
    EXPECT_EQ(a.alignment.a_end, b.alignment.a_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_begin, b.alignment.b_begin) << "record " << i;
    EXPECT_EQ(a.alignment.b_end, b.alignment.b_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_reversed, b.alignment.b_reversed) << "record " << i;
    EXPECT_EQ(a.alignment.cells, b.alignment.cells) << "record " << i;
  }
  for (std::size_t i = 1; i < chaos.records.size(); ++i)
    EXPECT_FALSE(chaos.records[i - 1].read_a == chaos.records[i].read_a &&
                 chaos.records[i - 1].read_b == chaos.records[i].read_b)
        << "duplicate emission of pair (" << chaos.records[i].read_a << ", "
        << chaos.records[i].read_b << ")";
}

/// engine (async?) x rank count.
class SelfHealingMatrix
    : public ::testing::TestWithParam<std::tuple<bool, std::size_t>> {
 protected:
  void run_cell(const std::string& spec) {
    const auto [async_mode, ranks] = GetParam();
    const Workload w = make_workload(ranks);
    const RunOutcome clean = run_engine(async_mode, ranks, w);
    ASSERT_FALSE(clean.records.empty());
    SCOPED_TRACE((async_mode ? "async" : "bsp") + std::string(" ranks=") +
                 std::to_string(ranks) + " faults=" + spec);
    const RunOutcome chaos =
        run_engine(async_mode, ranks, w, rt::FaultPlan::parse(spec));
    expect_identical(chaos, clean);
  }
};

}  // namespace

TEST_P(SelfHealingMatrix, PartitionWindow) {
  run_cell("seed=101,partition@0|1:64:1500");
}

TEST_P(SelfHealingMatrix, CrashThenRestart) {
  run_cell("seed=102,crash@1:2,restart@1:0");
}

TEST_P(SelfHealingMatrix, CrashWithCorruptLog) {
  run_cell("seed=103,crash@1:4,corrupt@1:2:0");
}

TEST_P(SelfHealingMatrix, FullStackCombined) {
  run_cell("seed=104,crash@1:2,restart@1:0,partition@0|1:64:1500,corrupt@1:1:1");
}

INSTANTIATE_TEST_SUITE_P(
    EngineRanks, SelfHealingMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<SelfHealingMatrix::ParamType>& info) {
      return std::string(std::get<0>(info.param) ? "Async" : "Bsp") + "R" +
             std::to_string(std::get<1>(info.param));
    });
