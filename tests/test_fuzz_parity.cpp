// Property-based backend parity: for *randomized* workloads — seeded
// datasets of varying size, rank counts in {1, 2, 4, 8}, and sweeps of the
// ProtoConfig knobs — the protocol quantities the engines execute must
// equal the ones proto::plan_exchange predicts, and the two engines must
// move the same payload. test_parity pins these invariants on one curated
// fixture; this suite hammers them across the configuration space, so a
// knob interaction that breaks the shared-protocol contract fails here
// first. Every case is reproducible from its printed (trial, knobs) tuple.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "align/batch.hpp"
#include "align/xdrop.hpp"
#include "core/async.hpp"
#include "core/bsp.hpp"
#include "pipeline/pipeline.hpp"
#include "proto/config.hpp"
#include "proto/exchange_plan.hpp"
#include "proto/pull_index.hpp"
#include "rt/world.hpp"
#include "sim/assignment.hpp"
#include "util/rng.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

struct Workload {
  std::size_t ranks = 0;
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
  sim::SimAssignment assignment;
};

/// Deterministic "random" workload for one trial: genome size, dataset
/// seed, and rank count all derive from the trial index.
Workload make_workload(std::uint64_t trial) {
  Xoshiro256 rng(0xF022ULL * (trial + 1));
  Workload w;
  const std::size_t rank_choices[] = {1, 2, 4, 8};
  w.ranks = rank_choices[rng.below(4)];
  wl::DatasetSpec spec = wl::ecoli30x_spec();
  spec.genome.length = 8'000 + 2'000 * rng.below(5);  // 8k..16k bases
  w.dataset = wl::synthesize(spec, 100 + trial);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  w.tasks = pipeline::run_serial(w.dataset.reads, config, w.ranks);
  w.assignment =
      sim::assignment_from_tasks(w.tasks.per_rank, w.dataset.reads, w.tasks.bounds,
                                 proto::wire_compression_from_env());
  return w;
}

/// The proto-side predictions for this workload under `config`.
proto::ExchangePlan plan_for(const Workload& w, const proto::ProtoConfig& config) {
  std::vector<proto::RankExchangeInput> inputs(w.ranks);
  for (std::size_t r = 0; r < w.ranks; ++r) {
    inputs[r].pull_bytes = w.assignment.ranks[r].pull_bytes();
    inputs[r].serve_bytes = w.assignment.serve_bytes[r];
    std::vector<std::uint64_t> per_owner(w.ranks, 0);
    for (const sim::Pull& pull : w.assignment.ranks[r].pulls) ++per_owner[pull.owner];
    inputs[r].pulls_per_owner = per_owner;
    inputs[r].budget = proto::effective_round_budget(config, 0, 0);
  }
  return proto::plan_exchange(inputs, config);
}

struct Executed {
  std::uint64_t rounds = 0;  // max over ranks
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

Executed run_engine(bool async_mode, const Workload& w, const core::EngineConfig& config) {
  rt::World world(w.ranks);
  std::vector<core::EngineResult> results(w.ranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                       w.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                     w.tasks.per_rank[rank.id()], config);
  });
  Executed executed;
  for (const auto& result : results) {
    executed.rounds = std::max(executed.rounds, result.rounds);
    executed.messages += result.messages;
    executed.bytes += result.exchange_bytes_received;
  }
  return executed;
}

}  // namespace

TEST(FuzzParity, ExecutedProtocolMatchesPlanAcrossConfigSpace) {
  constexpr std::uint64_t kTrials = 6;
  const std::uint64_t budgets[] = {16'384, 65'536, 0};  // 0 = unbounded default
  const std::size_t batches[] = {1, 3, 7};
  const std::size_t windows[] = {2, 16, 512};

  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const Workload w = make_workload(trial);
    Xoshiro256 rng(0xC0FFEEULL + trial);
    core::EngineConfig config;
    config.skip_compute = true;  // parity is a communication-structure property
    if (const std::uint64_t budget = budgets[rng.below(3)]; budget != 0)
      config.proto.bsp_round_budget = budget;
    config.proto.async_batch = batches[rng.below(3)];
    config.proto.async_window = windows[rng.below(3)];
    SCOPED_TRACE("trial=" + std::to_string(trial) + " ranks=" + std::to_string(w.ranks) +
                 " budget=" + std::to_string(config.proto.bsp_round_budget) +
                 " batch=" + std::to_string(config.proto.async_batch) +
                 " window=" + std::to_string(config.proto.async_window));

    const proto::ExchangePlan plan = plan_for(w, config.proto);

    const Executed bsp = run_engine(false, w, config);
    EXPECT_EQ(bsp.rounds, plan.rounds);
    EXPECT_EQ(bsp.messages, plan.bsp_messages);
    EXPECT_EQ(bsp.bytes, plan.exchange_bytes);

    const Executed async = run_engine(true, w, config);
    EXPECT_EQ(async.messages, plan.async_messages);
    EXPECT_EQ(async.bytes, plan.exchange_bytes);

    // The two backends move the same payload: the exchange is a property of
    // the task assignment, not of the coordination strategy (the paper's
    // premise that the engines are interchangeable).
    EXPECT_EQ(bsp.bytes, async.bytes);
  }
}

TEST(FuzzParity, SingleRankRunsExchangeNothing) {
  // Degenerate rank count: every task is local-local; the plan and both
  // engines must agree on zero exchange.
  for (std::uint64_t trial = 0; trial < 2; ++trial) {
    Workload w = make_workload(trial);
    if (w.ranks != 1) {  // rebuild pinned at one rank
      w.ranks = 1;
      pipeline::PipelineConfig config;
      config.k = wl::ecoli30x_spec().k;
      config.lo = 2;
      config.hi = 8;
      w.tasks = pipeline::run_serial(w.dataset.reads, config, w.ranks);
      w.assignment =
          sim::assignment_from_tasks(w.tasks.per_rank, w.dataset.reads, w.tasks.bounds,
                                 proto::wire_compression_from_env());
    }
    core::EngineConfig config;
    config.skip_compute = true;
    const proto::ExchangePlan plan = plan_for(w, config.proto);
    EXPECT_EQ(plan.exchange_bytes, 0u);
    const Executed bsp = run_engine(false, w, config);
    const Executed async = run_engine(true, w, config);
    EXPECT_EQ(bsp.bytes, 0u);
    EXPECT_EQ(async.bytes, 0u);
    EXPECT_EQ(async.messages, plan.async_messages);
  }
}

namespace {

/// Full-compute run returning raw per-rank results (per-rank accepted order
/// preserved — the byte-identity surface).
std::vector<core::EngineResult> run_full(bool async_mode, const Workload& w,
                                         const core::EngineConfig& config) {
  rt::World world(w.ranks);
  std::vector<core::EngineResult> results(w.ranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                       w.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                     w.tasks.per_rank[rank.id()], config);
  });
  return results;
}

/// Stable full-field order for in-rank comparison: BSP merges are
/// deterministic, but async merges in reply-arrival order, which varies run
/// to run even at one thread — the contract is per-rank *multiset* identity.
std::vector<align::AlignmentRecord> full_sorted(std::vector<align::AlignmentRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score, x.alignment.cells,
                              x.alignment.a_begin, x.alignment.b_begin) <
                     std::tie(y.read_a, y.read_b, y.alignment.score, y.alignment.cells,
                              y.alignment.a_begin, y.alignment.b_begin);
            });
  return records;
}

void expect_byte_identical(const std::vector<core::EngineResult>& base,
                           const std::vector<core::EngineResult>& got,
                           bool sort_within_rank) {
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t r = 0; r < base.size(); ++r) {
    EXPECT_EQ(base[r].tasks_done, got[r].tasks_done) << "rank " << r;
    EXPECT_EQ(base[r].cells, got[r].cells) << "rank " << r;
    ASSERT_EQ(base[r].accepted.size(), got[r].accepted.size()) << "rank " << r;
    const auto xs = sort_within_rank ? full_sorted(base[r].accepted) : base[r].accepted;
    const auto ys = sort_within_rank ? full_sorted(got[r].accepted) : got[r].accepted;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const align::AlignmentRecord& a = xs[i];
      const align::AlignmentRecord& b = ys[i];
      EXPECT_TRUE(a.read_a == b.read_a && a.read_b == b.read_b &&
                  a.alignment.score == b.alignment.score &&
                  a.alignment.cells == b.alignment.cells &&
                  a.alignment.a_begin == b.alignment.a_begin &&
                  a.alignment.a_end == b.alignment.a_end &&
                  a.alignment.b_begin == b.alignment.b_begin &&
                  a.alignment.b_end == b.alignment.b_end &&
                  a.alignment.b_reversed == b.alignment.b_reversed)
          << "rank " << r << " record " << i << " diverged";
    }
  }
}

}  // namespace

TEST(FuzzParity, ComputeThreadsByteIdenticalAcrossWorkloads) {
  // The determinism contract of core::TaskRunner: at any thread count, each
  // rank's accepted records, tasks_done and cells equal the serial
  // engine's — in exact order for BSP (deterministic submission order),
  // as a multiset for async — across randomized workloads and both
  // backends.
  constexpr std::uint64_t kTrials = 3;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const Workload w = make_workload(trial);
    for (const bool async_mode : {false, true}) {
      core::EngineConfig serial;  // full compute
      serial.proto.compute_threads = 1;
      const auto base = run_full(async_mode, w, serial);
      for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        core::EngineConfig pooled;
        pooled.proto.compute_threads = threads;
        SCOPED_TRACE("trial=" + std::to_string(trial) +
                     " engine=" + (async_mode ? "async" : "bsp") +
                     " threads=" + std::to_string(threads));
        expect_byte_identical(base, run_full(async_mode, w, pooled),
                              /*sort_within_rank=*/async_mode);
      }
    }
  }
}

namespace {

/// Randomized task list for the kernel-level backend sweep. Sequences carry
/// occasional N codes, pairs are a mix of mutated copies (live, wide bands)
/// and unrelated sequence (early termination), and seeds sit at random
/// interior anchors with random orientation flags.
struct KernelFuzz {
  std::vector<std::vector<std::uint8_t>> storage;  // 2 per task, stable
  std::vector<align::Seed> seeds;
  align::XDropParams params;

  [[nodiscard]] std::vector<align::AlignTask> tasks() const {
    std::vector<align::AlignTask> out;
    out.reserve(seeds.size());
    for (std::size_t t = 0; t < seeds.size(); ++t)
      out.push_back(align::AlignTask{storage[2 * t], storage[2 * t + 1], seeds[t]});
    return out;
  }
};

std::vector<std::uint8_t> random_codes(Xoshiro256& rng, std::size_t n) {
  std::vector<std::uint8_t> codes(n);
  for (auto& code : codes)
    code = rng.below(48) == 0 ? std::uint8_t{4}  // sprinkle Ns
                              : static_cast<std::uint8_t>(rng.below(4));
  return codes;
}

KernelFuzz make_kernel_fuzz(std::uint64_t trial, std::size_t n_tasks) {
  Xoshiro256 rng(0xBA7C4ULL * (trial + 1));
  KernelFuzz fuzz;
  fuzz.params.x = std::int32_t{10} << rng.below(4);  // 10..80
  fuzz.params.scoring.match = 1 + static_cast<std::int32_t>(rng.below(3));
  fuzz.params.scoring.mismatch = -1 - static_cast<std::int32_t>(rng.below(4));
  fuzz.params.scoring.gap = -1 - static_cast<std::int32_t>(rng.below(4));
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const std::size_t na = 60 + rng.below(540);
    std::vector<std::uint8_t> a = random_codes(rng, na);
    std::vector<std::uint8_t> b;
    if (rng.below(4) != 0) {
      // Related: mutated copy of `a` at ~12% error.
      b = a;
      for (auto& code : b)
        if (rng.below(8) == 0) code = static_cast<std::uint8_t>(rng.below(4));
    } else {
      b = random_codes(rng, 60 + rng.below(540));
    }
    // Plant an exact anchor at random interior positions.
    const std::uint16_t k = static_cast<std::uint16_t>(11 + rng.below(7));
    const std::uint32_t pa = static_cast<std::uint32_t>(rng.below(a.size() - k));
    const std::uint32_t pb = static_cast<std::uint32_t>(rng.below(b.size() - k));
    for (std::uint32_t i = 0; i < k; ++i) b[pb + i] = a[pa + i];
    fuzz.storage.push_back(std::move(a));
    fuzz.storage.push_back(std::move(b));
    fuzz.seeds.push_back(align::Seed{pa, pb, k, rng.below(2) == 1});
  }
  return fuzz;
}

void expect_alignments_identical(const std::vector<align::Alignment>& base,
                                 const std::vector<align::Alignment>& got) {
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(base[i].score == got[i].score && base[i].a_begin == got[i].a_begin &&
                base[i].a_end == got[i].a_end && base[i].b_begin == got[i].b_begin &&
                base[i].b_end == got[i].b_end &&
                base[i].b_reversed == got[i].b_reversed &&
                base[i].cells == got[i].cells)
        << "task " << i << ": scalar {score=" << base[i].score << " a=["
        << base[i].a_begin << "," << base[i].a_end << ") b=[" << base[i].b_begin
        << "," << base[i].b_end << ") cells=" << base[i].cells << "} vs simd {score="
        << got[i].score << " a=[" << got[i].a_begin << "," << got[i].a_end << ") b=["
        << got[i].b_begin << "," << got[i].b_end << ") cells=" << got[i].cells << "}";
  }
}

}  // namespace

TEST(FuzzParity, BatchAlignerBackendsBitIdenticalAcrossScoringAndBatchSizes) {
  // The tentpole contract of the SIMD lane engine: for randomized reads,
  // randomized Scoring/x parameters and every batch-size shape (partial lane
  // width, exact width, width+1, multiple refills), the SIMD backend's
  // Alignment output — score, coordinates, per-task cells — equals the
  // scalar backend's bit for bit. The scalar backend itself is pinned to
  // xdrop_align by construction (test_align covers that seam).
  const std::size_t batch_sizes[] = {1, 7, 8, 9, 16, 33};
  std::uint64_t trial = 0;
  for (const std::size_t n_tasks : batch_sizes) {
    for (std::uint64_t rep = 0; rep < 3; ++rep, ++trial) {
      const KernelFuzz fuzz = make_kernel_fuzz(trial, n_tasks);
      SCOPED_TRACE("trial=" + std::to_string(trial) + " tasks=" + std::to_string(n_tasks) +
                   " x=" + std::to_string(fuzz.params.x) +
                   " match=" + std::to_string(fuzz.params.scoring.match) +
                   " mismatch=" + std::to_string(fuzz.params.scoring.mismatch) +
                   " gap=" + std::to_string(fuzz.params.scoring.gap));
      const std::vector<align::AlignTask> tasks = fuzz.tasks();
      const auto scalar =
          align::make_batch_aligner(proto::BatchAlignerKind::kScalar, fuzz.params);
      const auto simd =
          align::make_batch_aligner(proto::BatchAlignerKind::kSimd, fuzz.params);
      expect_alignments_identical(scalar->align(tasks), simd->align(tasks));
      // The backends also agree with the per-task oracle.
      const std::vector<align::Alignment> direct = [&] {
        std::vector<align::Alignment> out;
        for (const align::AlignTask& task : tasks)
          out.push_back(align::xdrop_align(task.a, task.b, task.seed, fuzz.params));
        return out;
      }();
      expect_alignments_identical(direct, scalar->align(tasks));
    }
  }
}

TEST(FuzzParity, SimdBackendByteIdenticalAtEngineLevel) {
  // End-to-end: swapping the batch aligner under the engines must not change
  // a single byte of any rank's EngineResult, serial or pooled, BSP or
  // async. (Same comparison discipline as the compute-threads test: exact
  // order for BSP, multiset for async.)
  constexpr std::uint64_t kTrials = 2;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const Workload w = make_workload(trial);
    for (const bool async_mode : {false, true}) {
      core::EngineConfig scalar;
      scalar.proto.compute_threads = 1;
      scalar.proto.batch_aligner = proto::BatchAlignerKind::kScalar;
      const auto base = run_full(async_mode, w, scalar);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        core::EngineConfig simd;
        simd.proto.compute_threads = threads;
        simd.proto.batch_aligner = proto::BatchAlignerKind::kSimd;
        SCOPED_TRACE("trial=" + std::to_string(trial) +
                     " engine=" + (async_mode ? "async" : "bsp") +
                     " threads=" + std::to_string(threads));
        expect_byte_identical(base, run_full(async_mode, w, simd),
                              /*sort_within_rank=*/async_mode);
      }
    }
  }
}

TEST(FuzzParity, PullSetsAreDeduplicatedUnderEveryWorkload) {
  // Invariant behind the byte parity: at most one pull per distinct remote
  // read, whatever the workload shape (paper §3.2).
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const Workload w = make_workload(trial);
    for (std::size_t r = 0; r < w.ranks; ++r) {
      const auto& pulls = w.assignment.ranks[r].pulls;
      for (std::size_t i = 1; i < pulls.size(); ++i)
        EXPECT_LT(pulls[i - 1].read, pulls[i].read)
            << "trial " << trial << " rank " << r << ": duplicate or unsorted pull";
    }
  }
}
