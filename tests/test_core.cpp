// Tests for the two many-to-many alignment engines: agreement with each
// other and with a serial reference, multi-round BSP under tight memory
// budgets, the comm-only mode, and cost calibration.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "core/calibrate.hpp"
#include "kmer/bella_filter.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::core;

namespace {

struct Fixture {
  wl::SampledDataset dataset;
  pipeline::PipelineConfig pipeline_config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 12'000;
    spec.reads.coverage = 8;
    fx.dataset = wl::synthesize(spec, 21);
    const auto bounds = kmer::reliable_bounds(
        kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
    fx.pipeline_config.k = spec.k;
    fx.pipeline_config.lo = bounds.lo;
    fx.pipeline_config.hi = bounds.hi;
    return fx;
  }();
  return f;
}

std::vector<align::AlignmentRecord> sorted(std::vector<align::AlignmentRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b) < std::tie(y.read_a, y.read_b);
            });
  return records;
}

struct RunOutcome {
  std::vector<align::AlignmentRecord> accepted;
  std::uint64_t tasks_done = 0;
  std::uint64_t cells = 0;
  std::uint64_t rounds_max = 0;
  std::uint64_t messages = 0;
  std::uint64_t exchange_bytes = 0;
};

RunOutcome run_engine(bool async_mode, std::size_t nranks, const EngineConfig& config,
                      const Fixture& f) {
  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, nranks);
  rt::World world(nranks);
  std::vector<EngineResult> results(nranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? async_align(rank, f.dataset.reads, tasks.bounds,
                                 tasks.per_rank[rank.id()], config)
                   : bsp_align(rank, f.dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                               config);
  });
  RunOutcome outcome;
  for (auto& result : results) {
    outcome.accepted.insert(outcome.accepted.end(), result.accepted.begin(),
                            result.accepted.end());
    outcome.tasks_done += result.tasks_done;
    outcome.cells += result.cells;
    outcome.messages += result.messages;
    outcome.exchange_bytes += result.exchange_bytes_received;
    outcome.rounds_max = std::max(outcome.rounds_max, result.rounds);
  }
  outcome.accepted = sorted(std::move(outcome.accepted));
  return outcome;
}

/// Serial reference: run every task directly with the kernel.
std::vector<align::AlignmentRecord> serial_reference(const EngineConfig& config,
                                                     const Fixture& f) {
  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, 1);
  std::vector<align::AlignmentRecord> accepted;
  for (const auto& task : tasks.per_rank[0]) {
    const align::Alignment alignment =
        align::xdrop_align(f.dataset.reads.get(task.a).sequence,
                           f.dataset.reads.get(task.b).sequence, task.seed, config.xdrop);
    if (config.filter.accepts(alignment))
      accepted.push_back(align::AlignmentRecord{task.a, task.b, alignment});
  }
  return sorted(std::move(accepted));
}

void expect_same_records(const std::vector<align::AlignmentRecord>& x,
                         const std::vector<align::AlignmentRecord>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].read_a, y[i].read_a);
    EXPECT_EQ(x[i].read_b, y[i].read_b);
    EXPECT_EQ(x[i].alignment.score, y[i].alignment.score);
    EXPECT_EQ(x[i].alignment.a_begin, y[i].alignment.a_begin);
    EXPECT_EQ(x[i].alignment.b_end, y[i].alignment.b_end);
  }
}

EngineConfig default_config() {
  EngineConfig config;
  config.filter = align::AlignmentFilter{50, 100};
  return config;
}

}  // namespace

class EngineAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineAgreement, BspEqualsAsyncEqualsSerial) {
  const EngineConfig config = default_config();
  const auto bsp = run_engine(false, GetParam(), config, fixture());
  const auto async = run_engine(true, GetParam(), config, fixture());
  const auto reference = serial_reference(config, fixture());
  expect_same_records(bsp.accepted, reference);
  expect_same_records(async.accepted, reference);
  EXPECT_EQ(bsp.tasks_done, async.tasks_done);
  EXPECT_EQ(bsp.cells, async.cells);
}

INSTANTIATE_TEST_SUITE_P(Ranks, EngineAgreement, ::testing::Values(1, 2, 3, 5, 8));

TEST(Engines, TightBudgetForcesMultipleRoundsSameResult) {
  EngineConfig tight = default_config();
  tight.proto.bsp_round_budget = 4'096;  // a few reads per round
  const auto bsp = run_engine(false, 4, tight, fixture());
  EXPECT_GT(bsp.rounds_max, 1u);
  const auto reference = serial_reference(default_config(), fixture());
  expect_same_records(bsp.accepted, reference);
}

TEST(Engines, GenerousBudgetSingleRound) {
  EngineConfig config = default_config();
  config.proto.bsp_round_budget = 1ull << 30;
  const auto bsp = run_engine(false, 4, config, fixture());
  EXPECT_EQ(bsp.rounds_max, 1u);
}

TEST(Engines, CommOnlyModeSkipsAlignment) {
  EngineConfig config = default_config();
  config.skip_compute = true;
  const auto bsp = run_engine(false, 3, config, fixture());
  const auto async = run_engine(true, 3, config, fixture());
  EXPECT_TRUE(bsp.accepted.empty());
  EXPECT_TRUE(async.accepted.empty());
  EXPECT_EQ(bsp.cells, 0u);
  EXPECT_EQ(async.cells, 0u);
  // ...but everything else still happened: tasks traversed, bytes moved.
  EXPECT_GT(bsp.tasks_done, 0u);
  EXPECT_EQ(bsp.tasks_done, async.tasks_done);
  EXPECT_GT(bsp.exchange_bytes, 0u);
  EXPECT_GT(async.exchange_bytes, 0u);
}

TEST(Engines, AsyncWindowOneStillCorrect) {
  EngineConfig config = default_config();
  config.proto.async_window = 1;
  const auto async = run_engine(true, 4, config, fixture());
  const auto reference = serial_reference(default_config(), fixture());
  expect_same_records(async.accepted, reference);
}

TEST(Engines, AsyncBatchedPullsStillCorrect) {
  EngineConfig config = default_config();
  config.proto.async_batch = 7;  // exercise multi-read request payloads
  const auto batched = run_engine(true, 4, config, fixture());
  const auto reference = run_engine(true, 4, default_config(), fixture());
  expect_same_records(batched.accepted, reference.accepted);
  // Batching shrinks message count but moves the same read payload.
  EXPECT_LT(batched.messages, reference.messages);
  EXPECT_EQ(batched.exchange_bytes, reference.exchange_bytes);
}

TEST(Engines, StricterFilterAcceptsSubset) {
  EngineConfig loose = default_config();
  EngineConfig strict = default_config();
  strict.filter = align::AlignmentFilter{200, 400};
  const auto all = run_engine(false, 2, loose, fixture());
  const auto few = run_engine(false, 2, strict, fixture());
  EXPECT_LT(few.accepted.size(), all.accepted.size());
  for (const auto& record : few.accepted) {
    EXPECT_GE(record.alignment.score, 200);
    EXPECT_GE(record.alignment.overlap_length(), 400u);
  }
}

TEST(Engines, TasksDoneMatchesTaskCount) {
  const auto tasks = pipeline::run_serial(fixture().dataset.reads,
                                          fixture().pipeline_config, 3);
  const auto bsp = run_engine(false, 3, default_config(), fixture());
  EXPECT_EQ(bsp.tasks_done, tasks.total_tasks());
}

TEST(Engines, AsyncPullsEachRemoteReadOnce) {
  // messages == number of distinct (rank, remote read) pairs <= tasks.
  const auto async = run_engine(true, 4, default_config(), fixture());
  const auto tasks = pipeline::run_serial(fixture().dataset.reads,
                                          fixture().pipeline_config, 4);
  EXPECT_LE(async.messages, tasks.total_tasks());
  EXPECT_GT(async.messages, 0u);
}

TEST(Engines, ExchangeBytesMatchBetweenModes) {
  // Async replies carry exactly the reads BSP would ship (each remote read
  // once per needing rank), so total exchanged payload must match.
  const auto bsp = run_engine(false, 4, default_config(), fixture());
  const auto async = run_engine(true, 4, default_config(), fixture());
  EXPECT_EQ(bsp.exchange_bytes, async.exchange_bytes);
}

TEST(Engines, DeterministicAcrossRuns) {
  const auto first = run_engine(false, 4, default_config(), fixture());
  const auto second = run_engine(false, 4, default_config(), fixture());
  expect_same_records(first.accepted, second.accepted);
}

TEST(LocalRead, GuardsAgainstRemoteAccess) {
  const auto& f = fixture();
  const auto bounds = pipeline::compute_bounds(f.dataset.reads, 2);
  // Rank 0 asking for a read owned by rank 1 must abort.
  const seq::ReadId foreign = bounds[1];
  EXPECT_DEATH((void)local_read(f.dataset.reads, bounds, 0, foreign), "");
}

TEST(Calibration, ProducesPlausibleRates) {
  const CostCalibration calibration = calibrate_cost_model(1, 0.05);
  EXPECT_GT(calibration.cells_per_second, 1e6);
  EXPECT_LT(calibration.cells_per_second, 1e11);
  EXPECT_GT(calibration.overhead_per_task, 0);
  EXPECT_LT(calibration.overhead_per_task, 1e-2);
}

TEST(Calibration, DeterministicInputsStableRate) {
  const CostCalibration a = calibrate_cost_model(3, 0.05);
  const CostCalibration b = calibrate_cost_model(3, 0.05);
  // Timing varies, but the measured rate should be the same order.
  EXPECT_LT(std::abs(std::log10(a.cells_per_second / b.cells_per_second)), 0.7);
}
