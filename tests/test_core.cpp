// Tests for the two many-to-many alignment engines: agreement with each
// other and with a serial reference, multi-round BSP under tight memory
// budgets, the comm-only mode, and cost calibration.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "core/calibrate.hpp"
#include "core/read_cache.hpp"
#include "kmer/bella_filter.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "seq/sequence.hpp"
#include "stat/breakdown.hpp"
#include "util/rng.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::core;

namespace {

struct Fixture {
  wl::SampledDataset dataset;
  pipeline::PipelineConfig pipeline_config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 12'000;
    spec.reads.coverage = 8;
    fx.dataset = wl::synthesize(spec, 21);
    const auto bounds = kmer::reliable_bounds(
        kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
    fx.pipeline_config.k = spec.k;
    fx.pipeline_config.lo = bounds.lo;
    fx.pipeline_config.hi = bounds.hi;
    return fx;
  }();
  return f;
}

std::vector<align::AlignmentRecord> sorted(std::vector<align::AlignmentRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b) < std::tie(y.read_a, y.read_b);
            });
  return records;
}

struct RunOutcome {
  std::vector<align::AlignmentRecord> accepted;
  std::uint64_t tasks_done = 0;
  std::uint64_t cells = 0;
  std::uint64_t rounds_max = 0;
  std::uint64_t messages = 0;
  std::uint64_t exchange_bytes = 0;
  /// Raw per-rank results in rank order (accepted NOT sorted) — the
  /// byte-identity surface for the compute_threads determinism contract.
  std::vector<EngineResult> per_rank;
};

RunOutcome run_engine(bool async_mode, std::size_t nranks, const EngineConfig& config,
                      const Fixture& f) {
  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, nranks);
  rt::World world(nranks);
  std::vector<EngineResult> results(nranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? async_align(rank, f.dataset.reads, tasks.bounds,
                                 tasks.per_rank[rank.id()], config)
                   : bsp_align(rank, f.dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                               config);
  });
  RunOutcome outcome;
  for (auto& result : results) {
    outcome.accepted.insert(outcome.accepted.end(), result.accepted.begin(),
                            result.accepted.end());
    outcome.tasks_done += result.tasks_done;
    outcome.cells += result.cells;
    outcome.messages += result.messages;
    outcome.exchange_bytes += result.exchange_bytes_received;
    outcome.rounds_max = std::max(outcome.rounds_max, result.rounds);
  }
  outcome.accepted = sorted(std::move(outcome.accepted));
  outcome.per_rank = std::move(results);
  return outcome;
}

/// Stable full-field ordering for per-rank record comparison when the
/// in-rank order is not reproducible across runs (async merges tasks in
/// reply-arrival order, which varies with thread scheduling even serially).
std::vector<align::AlignmentRecord> full_sorted(std::vector<align::AlignmentRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score, x.alignment.cells,
                              x.alignment.a_begin, x.alignment.b_begin) <
                     std::tie(y.read_a, y.read_b, y.alignment.score, y.alignment.cells,
                              y.alignment.a_begin, y.alignment.b_begin);
            });
  return records;
}

/// Field-by-field equality of per-rank engine results. For BSP the order
/// *within* each rank's accepted vector matters (submission order is
/// deterministic, and pooled merges must reproduce it exactly); for async
/// pass sort_within_rank = true, since reply arrival — and with it the
/// serial execution order itself — varies run to run.
void expect_identical_per_rank(const std::vector<EngineResult>& x,
                               const std::vector<EngineResult>& y,
                               bool sort_within_rank = false) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t r = 0; r < x.size(); ++r) {
    EXPECT_EQ(x[r].tasks_done, y[r].tasks_done) << "rank " << r;
    EXPECT_EQ(x[r].cells, y[r].cells) << "rank " << r;
    ASSERT_EQ(x[r].accepted.size(), y[r].accepted.size()) << "rank " << r;
    const std::vector<align::AlignmentRecord> xr =
        sort_within_rank ? full_sorted(x[r].accepted) : x[r].accepted;
    const std::vector<align::AlignmentRecord> yr =
        sort_within_rank ? full_sorted(y[r].accepted) : y[r].accepted;
    for (std::size_t i = 0; i < xr.size(); ++i) {
      const align::AlignmentRecord& a = xr[i];
      const align::AlignmentRecord& b = yr[i];
      EXPECT_EQ(a.read_a, b.read_a) << "rank " << r << " record " << i;
      EXPECT_EQ(a.read_b, b.read_b) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.score, b.alignment.score) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.cells, b.alignment.cells) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.a_begin, b.alignment.a_begin) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.a_end, b.alignment.a_end) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.b_begin, b.alignment.b_begin) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.b_end, b.alignment.b_end) << "rank " << r << " record " << i;
      EXPECT_EQ(a.alignment.b_reversed, b.alignment.b_reversed)
          << "rank " << r << " record " << i;
    }
  }
}

/// Serial reference: run every task directly with the kernel.
std::vector<align::AlignmentRecord> serial_reference(const EngineConfig& config,
                                                     const Fixture& f) {
  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, 1);
  std::vector<align::AlignmentRecord> accepted;
  for (const auto& task : tasks.per_rank[0]) {
    const align::Alignment alignment =
        align::xdrop_align(f.dataset.reads.get(task.a).sequence,
                           f.dataset.reads.get(task.b).sequence, task.seed, config.xdrop);
    if (config.filter.accepts(alignment))
      accepted.push_back(align::AlignmentRecord{task.a, task.b, alignment});
  }
  return sorted(std::move(accepted));
}

void expect_same_records(const std::vector<align::AlignmentRecord>& x,
                         const std::vector<align::AlignmentRecord>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].read_a, y[i].read_a);
    EXPECT_EQ(x[i].read_b, y[i].read_b);
    EXPECT_EQ(x[i].alignment.score, y[i].alignment.score);
    EXPECT_EQ(x[i].alignment.a_begin, y[i].alignment.a_begin);
    EXPECT_EQ(x[i].alignment.b_end, y[i].alignment.b_end);
  }
}

EngineConfig default_config() {
  EngineConfig config;
  config.filter = align::AlignmentFilter{50, 100};
  return config;
}

}  // namespace

class EngineAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineAgreement, BspEqualsAsyncEqualsSerial) {
  const EngineConfig config = default_config();
  const auto bsp = run_engine(false, GetParam(), config, fixture());
  const auto async = run_engine(true, GetParam(), config, fixture());
  const auto reference = serial_reference(config, fixture());
  expect_same_records(bsp.accepted, reference);
  expect_same_records(async.accepted, reference);
  EXPECT_EQ(bsp.tasks_done, async.tasks_done);
  EXPECT_EQ(bsp.cells, async.cells);
}

INSTANTIATE_TEST_SUITE_P(Ranks, EngineAgreement, ::testing::Values(1, 2, 3, 5, 8));

TEST(Engines, TightBudgetForcesMultipleRoundsSameResult) {
  EngineConfig tight = default_config();
  tight.proto.bsp_round_budget = 4'096;  // a few reads per round
  const auto bsp = run_engine(false, 4, tight, fixture());
  EXPECT_GT(bsp.rounds_max, 1u);
  const auto reference = serial_reference(default_config(), fixture());
  expect_same_records(bsp.accepted, reference);
}

TEST(Engines, GenerousBudgetSingleRound) {
  EngineConfig config = default_config();
  config.proto.bsp_round_budget = 1ull << 30;
  const auto bsp = run_engine(false, 4, config, fixture());
  EXPECT_EQ(bsp.rounds_max, 1u);
}

TEST(Engines, CommOnlyModeSkipsAlignment) {
  EngineConfig config = default_config();
  config.skip_compute = true;
  const auto bsp = run_engine(false, 3, config, fixture());
  const auto async = run_engine(true, 3, config, fixture());
  EXPECT_TRUE(bsp.accepted.empty());
  EXPECT_TRUE(async.accepted.empty());
  EXPECT_EQ(bsp.cells, 0u);
  EXPECT_EQ(async.cells, 0u);
  // ...but everything else still happened: tasks traversed, bytes moved.
  EXPECT_GT(bsp.tasks_done, 0u);
  EXPECT_EQ(bsp.tasks_done, async.tasks_done);
  EXPECT_GT(bsp.exchange_bytes, 0u);
  EXPECT_GT(async.exchange_bytes, 0u);
}

TEST(Engines, AsyncWindowOneStillCorrect) {
  EngineConfig config = default_config();
  config.proto.async_window = 1;
  const auto async = run_engine(true, 4, config, fixture());
  const auto reference = serial_reference(default_config(), fixture());
  expect_same_records(async.accepted, reference);
}

TEST(Engines, AsyncBatchedPullsStillCorrect) {
  EngineConfig config = default_config();
  config.proto.async_batch = 7;  // exercise multi-read request payloads
  const auto batched = run_engine(true, 4, config, fixture());
  const auto reference = run_engine(true, 4, default_config(), fixture());
  expect_same_records(batched.accepted, reference.accepted);
  // Batching shrinks message count but moves the same read payload.
  EXPECT_LT(batched.messages, reference.messages);
  EXPECT_EQ(batched.exchange_bytes, reference.exchange_bytes);
}

TEST(Engines, StricterFilterAcceptsSubset) {
  EngineConfig loose = default_config();
  EngineConfig strict = default_config();
  strict.filter = align::AlignmentFilter{200, 400};
  const auto all = run_engine(false, 2, loose, fixture());
  const auto few = run_engine(false, 2, strict, fixture());
  EXPECT_LT(few.accepted.size(), all.accepted.size());
  for (const auto& record : few.accepted) {
    EXPECT_GE(record.alignment.score, 200);
    EXPECT_GE(record.alignment.overlap_length(), 400u);
  }
}

TEST(Engines, TasksDoneMatchesTaskCount) {
  const auto tasks = pipeline::run_serial(fixture().dataset.reads,
                                          fixture().pipeline_config, 3);
  const auto bsp = run_engine(false, 3, default_config(), fixture());
  EXPECT_EQ(bsp.tasks_done, tasks.total_tasks());
}

TEST(Engines, AsyncPullsEachRemoteReadOnce) {
  // messages == number of distinct (rank, remote read) pairs <= tasks.
  const auto async = run_engine(true, 4, default_config(), fixture());
  const auto tasks = pipeline::run_serial(fixture().dataset.reads,
                                          fixture().pipeline_config, 4);
  EXPECT_LE(async.messages, tasks.total_tasks());
  EXPECT_GT(async.messages, 0u);
}

TEST(Engines, ExchangeBytesMatchBetweenModes) {
  // Async replies carry exactly the reads BSP would ship (each remote read
  // once per needing rank), so total exchanged payload must match.
  const auto bsp = run_engine(false, 4, default_config(), fixture());
  const auto async = run_engine(true, 4, default_config(), fixture());
  EXPECT_EQ(bsp.exchange_bytes, async.exchange_bytes);
}

TEST(Engines, DeterministicAcrossRuns) {
  const auto first = run_engine(false, 4, default_config(), fixture());
  const auto second = run_engine(false, 4, default_config(), fixture());
  expect_same_records(first.accepted, second.accepted);
}

TEST(LocalRead, GuardsAgainstRemoteAccess) {
  const auto& f = fixture();
  const auto bounds = pipeline::compute_bounds(f.dataset.reads, 2);
  // Rank 0 asking for a read owned by rank 1 must abort.
  const seq::ReadId foreign = bounds[1];
  EXPECT_DEATH((void)local_read(f.dataset.reads, bounds, 0, foreign), "");
}

TEST(Calibration, ProducesPlausibleRates) {
  const CostCalibration calibration = calibrate_cost_model(1, 0.05);
  EXPECT_GT(calibration.cells_per_second, 1e6);
  EXPECT_LT(calibration.cells_per_second, 1e11);
  EXPECT_GT(calibration.overhead_per_task, 0);
  EXPECT_LT(calibration.overhead_per_task, 1e-2);
}

TEST(Calibration, DeterministicInputsStableRate) {
  const CostCalibration a = calibrate_cost_model(3, 0.05);
  const CostCalibration b = calibrate_cost_model(3, 0.05);
  // Timing varies, but the measured rate should be the same order.
  EXPECT_LT(std::abs(std::log10(a.cells_per_second / b.cells_per_second)), 0.7);
}

// ---------- ReadCache ----------

namespace {

seq::Read make_read(seq::ReadId id, std::size_t length, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> codes(length);
  for (auto& code : codes) code = static_cast<std::uint8_t>(rng.below(4));
  seq::Read read;
  read.id = id;
  read.name = "r" + std::to_string(id);
  read.sequence = seq::Sequence::from_codes(codes);
  return read;
}

}  // namespace

TEST(ReadCache, HitAndMissAccounting) {
  ReadCache cache(/*max_bytes=*/0);  // unbounded
  const seq::Read read = make_read(0, 120, 91);
  const ReadCache::Codes first = cache.get(read, false);
  EXPECT_EQ(*first, seq::oriented_codes(read.sequence, false));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  const ReadCache::Codes second = cache.get(read, false);
  EXPECT_EQ(first.get(), second.get());  // the same buffer, not a re-decode
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().bytes, 120u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ReadCache, OrientationsAreDistinctEntries) {
  ReadCache cache(0);
  const seq::Read read = make_read(3, 64, 92);
  const ReadCache::Codes fwd = cache.get(read, false);
  const ReadCache::Codes rc = cache.get(read, true);
  EXPECT_EQ(cache.stats().misses, 2u);  // each orientation decodes once
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(*rc, seq::oriented_codes(read.sequence, true));
  EXPECT_EQ(*rc, read.sequence.reverse_complement().unpack());
  EXPECT_NE(*fwd, *rc);
  EXPECT_EQ(cache.get(read, true).get(), rc.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ReadCache, ByteBoundEvictsLeastRecentlyUsed) {
  ReadCache cache(/*max_bytes=*/250);
  const seq::Read r0 = make_read(0, 100, 93);
  const seq::Read r1 = make_read(1, 100, 94);
  const seq::Read r2 = make_read(2, 100, 95);
  (void)cache.get(r0, false);
  (void)cache.get(r1, false);
  EXPECT_EQ(cache.stats().bytes, 200u);
  (void)cache.get(r0, false);  // touch r0: r1 becomes the LRU victim
  (void)cache.get(r2, false);  // 300 > 250: evict r1
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 250u);
  EXPECT_EQ(cache.entries(), 2u);
  const std::uint64_t hits_before = cache.stats().hits;
  (void)cache.get(r0, false);  // survived
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  (void)cache.get(r1, false);  // evicted: decodes again
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().peak_bytes, 300u);  // watermark before the evict
}

TEST(ReadCache, EntryLargerThanBudgetStillServed) {
  // The bound is soft by one entry: the just-inserted entry is never the
  // eviction victim, so a read longer than the whole budget still caches.
  ReadCache cache(/*max_bytes=*/50);
  const seq::Read big = make_read(7, 200, 96);
  const ReadCache::Codes codes = cache.get(big, false);
  EXPECT_EQ(codes->size(), 200u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.stats().bytes, 200u);
  const seq::Read next = make_read(8, 200, 97);
  (void)cache.get(next, false);  // displaces the oversized entry
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ReadCache, EvictedHandleOutlivesEntry) {
  // An in-flight AlignPool slot holds the shared_ptr; eviction must not
  // invalidate it.
  ReadCache cache(/*max_bytes=*/100);
  const seq::Read r0 = make_read(0, 100, 98);
  const seq::Read r1 = make_read(1, 100, 99);
  const ReadCache::Codes pinned = cache.get(r0, false);
  const std::vector<std::uint8_t> expected = *pinned;
  (void)cache.get(r1, false);  // evicts r0's entry
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(*pinned, expected);  // handle still alive and intact
}

TEST(ReadCache, ClearKeepsCumulativeCounters) {
  ReadCache cache(0);
  const seq::Read read = make_read(0, 50, 100);
  (void)cache.get(read, false);
  (void)cache.get(read, false);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);    // cumulative
  EXPECT_EQ(cache.stats().misses, 1u);  // cumulative
  EXPECT_EQ(cache.stats().evictions, 0u);  // clear() is not an eviction
  (void)cache.get(read, false);
  EXPECT_EQ(cache.stats().misses, 2u);  // re-decodes after clear
}

// ---------- ComputeCounters ----------

TEST(ComputeCounters, MergeSumsCountersAndMaxesGauges) {
  stat::ComputeCounters a;
  a.threads = 2;
  a.cache_hits = 10;
  a.cache_misses = 4;
  a.cache_evictions = 1;
  a.cache_peak_bytes = 100;
  a.pool_tasks = 20;
  a.pool_batches = 3;
  stat::ComputeCounters b;
  b.threads = 4;
  b.cache_hits = 5;
  b.cache_misses = 6;
  b.cache_peak_bytes = 70;
  b.pool_tasks = 7;
  b.pool_batches = 2;
  a.merge(b);
  EXPECT_EQ(a.threads, 4u);            // per-rank gauge: max
  EXPECT_EQ(a.cache_peak_bytes, 100u); // per-rank gauge: max
  EXPECT_EQ(a.cache_hits, 15u);        // counters: sum
  EXPECT_EQ(a.cache_misses, 10u);
  EXPECT_EQ(a.cache_evictions, 1u);
  EXPECT_EQ(a.pool_tasks, 27u);
  EXPECT_EQ(a.pool_batches, 5u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 15.0 / 25.0);
  EXPECT_DOUBLE_EQ(stat::ComputeCounters{}.hit_rate(), 0.0);
}

// ---------- compute_threads: the pooled engines ----------

class ThreadedEngines : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadedEngines, ByteIdenticalToSerialBothEngines) {
  EngineConfig serial = default_config();
  serial.proto.compute_threads = 1;  // pin: GNB_COMPUTE_THREADS may be set
  EngineConfig pooled = default_config();
  pooled.proto.compute_threads = GetParam();
  for (const bool async_mode : {false, true}) {
    const auto base = run_engine(async_mode, 3, serial, fixture());
    const auto threaded = run_engine(async_mode, 3, pooled, fixture());
    expect_identical_per_rank(base.per_rank, threaded.per_rank,
                              /*sort_within_rank=*/async_mode);
    EXPECT_EQ(threaded.messages, base.messages);
    EXPECT_EQ(threaded.exchange_bytes, base.exchange_bytes);
    EXPECT_EQ(threaded.rounds_max, base.rounds_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedEngines, ::testing::Values(2, 4));

TEST(ThreadedEngines, PoolAndCacheCountersAccount) {
  EngineConfig pooled = default_config();
  pooled.proto.compute_threads = 4;
  const auto run = run_engine(false, 2, pooled, fixture());
  std::uint64_t pool_tasks = 0, lookups = 0, tasks = 0;
  for (const EngineResult& r : run.per_rank) {
    EXPECT_EQ(r.compute.threads, 4u);
    pool_tasks += r.compute.pool_tasks;
    lookups += r.compute.cache_hits + r.compute.cache_misses;
    tasks += r.tasks_done;
    EXPECT_GT(r.compute.pool_batches, 0u);
  }
  EXPECT_EQ(pool_tasks, tasks);    // every kernel ran on a worker
  EXPECT_EQ(lookups, 2 * tasks);   // two cache lookups per task
  EXPECT_GT(tasks, 0u);
}

TEST(ThreadedEngines, SerialModeNeverTouchesThePool) {
  EngineConfig config = default_config();
  config.proto.compute_threads = 1;  // pin: GNB_COMPUTE_THREADS may be set
  const auto run = run_engine(true, 2, config, fixture());
  for (const EngineResult& r : run.per_rank) {
    EXPECT_EQ(r.compute.threads, 1u);
    EXPECT_EQ(r.compute.pool_tasks, 0u);
    EXPECT_EQ(r.compute.pool_batches, 0u);
    // The cache still dedupes decodes on the inline path.
    EXPECT_EQ(r.compute.cache_hits + r.compute.cache_misses, 2 * r.tasks_done);
  }
}

TEST(ThreadedEngines, SkipComputeForcesInlineExecution) {
  EngineConfig config = default_config();
  config.skip_compute = true;
  config.proto.compute_threads = 4;  // ignored: no kernels to offload
  const auto run = run_engine(false, 2, config, fixture());
  for (const EngineResult& r : run.per_rank) {
    EXPECT_EQ(r.compute.threads, 1u);
    EXPECT_EQ(r.compute.pool_tasks, 0u);
  }
}

TEST(ThreadedEngines, CacheBudgetZeroMeansUnbounded) {
  EngineConfig config = default_config();
  config.proto.read_cache_bytes = 0;
  const auto unbounded = run_engine(false, 2, config, fixture());
  for (const EngineResult& r : unbounded.per_rank) EXPECT_EQ(r.compute.cache_evictions, 0u);
  // A starved cache still produces identical records — only more decodes.
  config.proto.read_cache_bytes = 1;  // every insert evicts the previous
  const auto starved = run_engine(false, 2, config, fixture());
  expect_identical_per_rank(unbounded.per_rank, starved.per_rank);
  std::uint64_t evictions = 0;
  for (const EngineResult& r : starved.per_rank) evictions += r.compute.cache_evictions;
  EXPECT_GT(evictions, 0u);
}
