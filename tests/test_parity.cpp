// Backend parity: the protocol decisions (src/proto) that the simulator
// costs are exactly the ones the real engines execute. One task
// assignment, fed to (a) the real BSP/async engines, (b) the simulator's
// assignment adapter + proto::plan_exchange — round counts, per-round
// boundaries, pull sets, message counts, and exchanged bytes must agree.
//
// Runs on the ecoli30x_sim preset (scaled genome) at 4 ranks in the §4.3
// comm-only mode: parity is a property of the communication structure, not
// of the alignment kernel.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "pipeline/pipeline.hpp"
#include "proto/config.hpp"
#include "proto/exchange_plan.hpp"
#include "proto/pull_index.hpp"
#include "proto/round_planner.hpp"
#include "rt/world.hpp"
#include "seq/read_store.hpp"
#include "seq/wire_codec.hpp"
#include "sim/assignment.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

constexpr std::size_t kRanks = 4;

/// The wire codec the engines run under by default (env-seeded, so the CI
/// wire-compression leg drives this whole parity matrix through pack2-rle).
proto::WireCompression wire_mode() { return proto::wire_compression_from_env(); }

struct Fixture {
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
  sim::SimAssignment assignment;  // via the real-pipeline adapter
};

/// Shared across every test in this binary — and safe to share: the
/// fixture is built once (thread-safe magic static), `const` thereafter,
/// and no test mutates it; engine runs construct their own rt::World and
/// only read the dataset/tasks. Tests therefore stay order-independent:
/// any subset, in any order (gtest shuffle included), sees the same
/// deterministic fixture (fixed dataset seed 33).
const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    wl::DatasetSpec spec = wl::ecoli30x_spec();
    spec.genome.length = 20'000;  // scaled like the other test fixtures
    fx.dataset = wl::synthesize(spec, 33);
    pipeline::PipelineConfig config;
    config.k = spec.k;
    config.lo = 2;
    config.hi = 8;
    fx.tasks = pipeline::run_serial(fx.dataset.reads, config, kRanks);
    fx.assignment = sim::assignment_from_tasks(fx.tasks.per_rank, fx.dataset.reads,
                                               fx.tasks.bounds, wire_mode());
    return fx;
  }();
  return f;
}

/// Build the same per-rank pull index the engines build internally.
std::vector<proto::PullIndex> build_indexes(const Fixture& f) {
  std::vector<proto::PullIndex> indexes(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    const auto& my_tasks = f.tasks.per_rank[r];
    for (std::size_t t = 0; t < my_tasks.size(); ++t) {
      const kmer::AlignTask& task = my_tasks[t];
      const auto owner_a = static_cast<std::uint32_t>(
          seq::partition_owner(f.tasks.bounds, task.a));
      const auto owner_b = static_cast<std::uint32_t>(
          seq::partition_owner(f.tasks.bounds, task.b));
      indexes[r].add_task(t, task.a, task.b, owner_a, owner_b, r);
    }
    indexes[r].finalize();
  }
  return indexes;
}

/// The proto-side plan for this assignment under `config` — the quantities
/// the simulator reports.
proto::ExchangePlan plan_for(const Fixture& f, const proto::ProtoConfig& config) {
  std::vector<proto::RankExchangeInput> inputs(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    inputs[r].pull_bytes = f.assignment.ranks[r].pull_bytes();
    inputs[r].serve_bytes = f.assignment.serve_bytes[r];
    std::vector<std::uint64_t> per_owner(kRanks, 0);
    for (const sim::Pull& pull : f.assignment.ranks[r].pulls) ++per_owner[pull.owner];
    inputs[r].pulls_per_owner = per_owner;
    // The real engines run without a probed memory capacity.
    inputs[r].budget = proto::effective_round_budget(config, 0, 0);
  }
  return proto::plan_exchange(inputs, config);
}

std::vector<core::EngineResult> run_engines(bool async_mode, const core::EngineConfig& config,
                                            const Fixture& f) {
  rt::World world(kRanks);
  std::vector<core::EngineResult> results(kRanks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, f.dataset.reads, f.tasks.bounds,
                                       f.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, f.dataset.reads, f.tasks.bounds,
                                     f.tasks.per_rank[rank.id()], config);
  });
  return results;
}

core::EngineConfig comm_only_config() {
  core::EngineConfig config;
  config.skip_compute = true;  // parity concerns the communication structure
  return config;
}

}  // namespace

TEST(Parity, AdapterPullSetsMatchEngineIndex) {
  const Fixture& f = fixture();
  const auto indexes = build_indexes(f);
  for (std::size_t r = 0; r < kRanks; ++r) {
    const auto& engine_pulls = indexes[r].pulls();
    const auto& sim_pulls = f.assignment.ranks[r].pulls;
    ASSERT_EQ(engine_pulls.size(), sim_pulls.size()) << "rank " << r;
    for (std::size_t i = 0; i < engine_pulls.size(); ++i) {
      EXPECT_EQ(engine_pulls[i].read, sim_pulls[i].read);
      EXPECT_EQ(engine_pulls[i].owner, sim_pulls[i].owner);
      EXPECT_EQ(sim_pulls[i].bytes,
                seq::encoded_read_bytes(f.dataset.reads.get(sim_pulls[i].read), wire_mode()));
      EXPECT_EQ(sim_pulls[i].raw_bytes,
                seq::raw_read_bytes(f.dataset.reads.get(sim_pulls[i].read)));
    }
    EXPECT_EQ(indexes[r].local_tasks().size(), f.assignment.ranks[r].local_tasks);
  }
}

TEST(Parity, BspRoundsMessagesAndBytesMatchPlan) {
  const Fixture& f = fixture();
  core::EngineConfig config = comm_only_config();
  config.proto.bsp_round_budget = 32'768;  // force a multi-round exchange
  const proto::ExchangePlan plan = plan_for(f, config.proto);
  ASSERT_GT(plan.rounds, 1u) << "budget too generous to exercise round planning";

  const auto results = run_engines(false, config, f);
  std::uint64_t messages = 0, bytes = 0;
  for (const auto& result : results) {
    EXPECT_EQ(result.rounds, plan.rounds);  // the allreduce agrees with the max
    messages += result.messages;
    bytes += result.exchange_bytes_received;
  }
  EXPECT_EQ(messages, plan.bsp_messages);
  EXPECT_EQ(bytes, plan.exchange_bytes);
}

TEST(Parity, BspRoundBoundariesMatchPlannedSchedule) {
  const Fixture& f = fixture();
  core::EngineConfig config = comm_only_config();
  config.proto.bsp_round_budget = 32'768;
  const proto::ExchangePlan plan = plan_for(f, config.proto);
  const auto indexes = build_indexes(f);
  const auto results = run_engines(false, config, f);

  for (std::size_t r = 0; r < kRanks; ++r) {
    // Reconstruct rank r's FIFO serve queues: for each requester, the wire
    // sizes of the reads it asked r for, in the deterministic request
    // order — then plan with the global round count.
    std::vector<std::vector<std::uint64_t>> serve_sizes(kRanks);
    for (std::size_t dst = 0; dst < kRanks; ++dst) {
      const auto needed = indexes[dst].needed_by_owner(kRanks);
      for (const std::uint32_t id : needed[r])
        serve_sizes[dst].push_back(
            seq::encoded_read_bytes(f.dataset.reads.get(id), wire_mode()));
    }
    const proto::RoundPlan expected = proto::plan_rounds(serve_sizes, plan.rounds);

    ASSERT_EQ(results[r].round_bytes.size(), expected.nrounds()) << "rank " << r;
    for (std::size_t t = 0; t < expected.nrounds(); ++t)
      EXPECT_EQ(results[r].round_bytes[t], expected.rounds[t].bytes)
          << "rank " << r << " round " << t;
  }
}

TEST(Parity, AsyncMessagesAndBytesMatchPlan) {
  const Fixture& f = fixture();
  for (const std::size_t batch : {std::size_t{1}, std::size_t{5}}) {
    core::EngineConfig config = comm_only_config();
    config.proto.async_batch = batch;
    const proto::ExchangePlan plan = plan_for(f, config.proto);
    const auto results = run_engines(true, config, f);
    std::uint64_t messages = 0, bytes = 0;
    for (const auto& result : results) {
      messages += result.messages;
      bytes += result.exchange_bytes_received;
    }
    EXPECT_EQ(messages, plan.async_messages) << "batch " << batch;
    EXPECT_EQ(bytes, plan.exchange_bytes) << "batch " << batch;
  }
}

TEST(Parity, BothBackendsMoveTheSamePayload) {
  const Fixture& f = fixture();
  const core::EngineConfig config = comm_only_config();
  const proto::ExchangePlan plan = plan_for(f, config.proto);
  const auto bsp = run_engines(false, config, f);
  const auto async = run_engines(true, config, f);
  std::uint64_t bsp_bytes = 0, async_bytes = 0;
  for (const auto& result : bsp) bsp_bytes += result.exchange_bytes_received;
  for (const auto& result : async) async_bytes += result.exchange_bytes_received;
  EXPECT_EQ(bsp_bytes, plan.exchange_bytes);
  EXPECT_EQ(async_bytes, plan.exchange_bytes);
}
