// Tests for CIGAR/traceback alignment and overlap-based error correction.

#include <gtest/gtest.h>

#include <algorithm>

#include "align/banded.hpp"
#include "align/cigar.hpp"
#include "core/bsp.hpp"
#include "correct/consensus.hpp"
#include "kmer/bella_filter.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wl/genome.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::align;

namespace {

using Codes = std::vector<std::uint8_t>;

Codes random_codes(std::size_t length, Xoshiro256& rng) {
  Codes c(length);
  for (auto& x : c) x = static_cast<std::uint8_t>(rng.below(4));
  return c;
}

Codes mutate(const Codes& src, double rate, Xoshiro256& rng) {
  Codes out;
  for (const auto base : src) {
    const double roll = rng.uniform();
    if (roll < rate / 3) continue;
    if (roll < 2 * rate / 3) out.push_back(static_cast<std::uint8_t>(rng.below(4)));
    if (roll < rate) {
      out.push_back(static_cast<std::uint8_t>((base + 1 + rng.below(3)) & 3));
    } else {
      out.push_back(base);
    }
  }
  return out;
}

}  // namespace

// ---------- CIGAR basics ----------

TEST(Cigar, StringAndSpans) {
  const Cigar cigar{{CigarOp::kMatch, 12}, {CigarOp::kMismatch, 1}, {CigarOp::kDeletion, 3},
                    {CigarOp::kMatch, 9},  {CigarOp::kInsertion, 2}};
  EXPECT_EQ(cigar_string(cigar), "12=1X3D9=2I");
  EXPECT_EQ(cigar_query_span(cigar), 12u + 1 + 9 + 2);
  EXPECT_EQ(cigar_target_span(cigar), 12u + 1 + 3 + 9);
  EXPECT_NEAR(cigar_identity(cigar), 21.0 / 27.0, 1e-12);
}

TEST(Cigar, ConsistencyChecker) {
  const Codes a{0, 1, 2, 3};
  const Codes b{0, 1, 1, 3};
  const Cigar good{{CigarOp::kMatch, 2}, {CigarOp::kMismatch, 1}, {CigarOp::kMatch, 1}};
  EXPECT_TRUE(cigar_consistent(good, a, b));
  const Cigar wrong_label{{CigarOp::kMatch, 4}};
  EXPECT_FALSE(cigar_consistent(wrong_label, a, b));
  const Cigar wrong_span{{CigarOp::kMatch, 2}};
  EXPECT_FALSE(cigar_consistent(wrong_span, a, b));
}

// ---------- banded traceback ----------

TEST(Traceback, IdenticalSequencesAllMatch) {
  Xoshiro256 rng(1);
  const Codes a = random_codes(200, rng);
  const TracebackResult r = banded_global_traceback(a, a, 8);
  EXPECT_EQ(r.score, 200);
  ASSERT_EQ(r.cigar.size(), 1u);
  EXPECT_EQ(r.cigar[0].op, CigarOp::kMatch);
  EXPECT_EQ(r.cigar[0].length, 200u);
}

TEST(Traceback, SingleSubstitution) {
  Codes a{0, 1, 2, 3, 0, 1, 2, 3};
  Codes b = a;
  b[3] = 0;
  const TracebackResult r = banded_global_traceback(a, b, 4);
  EXPECT_EQ(r.score, 7 - 1);
  EXPECT_EQ(cigar_string(r.cigar), "3=1X4=");
}

TEST(Traceback, SingleDeletionInB) {
  Codes a{0, 1, 2, 3, 0, 1, 2, 3};
  Codes b = a;
  b.erase(b.begin() + 4);
  const TracebackResult r = banded_global_traceback(a, b, 4);
  EXPECT_EQ(r.score, 7 - 1);
  EXPECT_TRUE(cigar_consistent(r.cigar, a, b));
  // Exactly one 1-base insertion (a has the extra base).
  std::size_t insertions = 0;
  for (const auto& run : r.cigar)
    if (run.op == CigarOp::kInsertion) insertions += run.length;
  EXPECT_EQ(insertions, 1u);
}

TEST(Traceback, ScoreMatchesScoreOnlyBandedAligner) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const Codes ancestor = random_codes(150, rng);
    const Codes a = mutate(ancestor, 0.08, rng);
    const Codes b = mutate(ancestor, 0.08, rng);
    const std::size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    const std::size_t band = diff + 30;
    const TracebackResult tb = banded_global_traceback(a, b, band);
    EXPECT_EQ(tb.score, banded_global(a, b, band).score);
    EXPECT_TRUE(cigar_consistent(tb.cigar, a, b));
    // The transcript's score re-derives the DP score.
    std::int32_t rescored = 0;
    for (const auto& run : tb.cigar) {
      switch (run.op) {
        case CigarOp::kMatch: rescored += static_cast<std::int32_t>(run.length); break;
        case CigarOp::kMismatch: rescored -= static_cast<std::int32_t>(run.length); break;
        default: rescored -= static_cast<std::int32_t>(run.length); break;
      }
    }
    EXPECT_EQ(rescored, tb.score);
  }
}

TEST(Traceback, BandTooNarrowThrows) {
  const Codes a(30, 0);
  const Codes b(10, 0);
  EXPECT_THROW(banded_global_traceback(a, b, 5), Error);
}

TEST(Traceback, EmptyInputs) {
  const Codes a;
  const Codes b{0, 1};
  const TracebackResult r = banded_global_traceback(a, b, 4);
  EXPECT_EQ(r.score, -2);
  EXPECT_EQ(cigar_string(r.cigar), "2D");
  const TracebackResult rr = banded_global_traceback(b, a, 4);
  EXPECT_EQ(cigar_string(rr.cigar), "2I");
}

// ---------- correct_read unit cases ----------

namespace {

correct::Evidence full_evidence(const seq::Sequence& partner, std::uint32_t read_len) {
  correct::Evidence ev;
  ev.partner = &partner;
  ev.read_begin = 0;
  ev.read_end = read_len;
  ev.partner_begin = 0;
  ev.partner_end = static_cast<std::uint32_t>(partner.size());
  return ev;
}

}  // namespace

TEST(CorrectRead, FixesSingleSubstitution) {
  Xoshiro256 rng(11);
  const Codes truth = random_codes(120, rng);
  Codes noisy = truth;
  noisy[60] = static_cast<std::uint8_t>((noisy[60] + 1) & 3);
  const seq::Sequence read = seq::Sequence::from_codes(noisy);
  const seq::Sequence partner = seq::Sequence::from_codes(truth);

  std::vector<correct::Evidence> evidence(4, full_evidence(partner, 120));
  correct::CorrectionParams params;
  params.min_coverage = 3;
  const seq::Sequence fixed = correct::correct_read(read, evidence, params);
  EXPECT_EQ(fixed, seq::Sequence::from_codes(truth));
}

TEST(CorrectRead, RemovesInsertedBase) {
  Xoshiro256 rng(12);
  const Codes truth = random_codes(100, rng);
  Codes noisy = truth;
  noisy.insert(noisy.begin() + 40, static_cast<std::uint8_t>(rng.below(4)));
  const seq::Sequence read = seq::Sequence::from_codes(noisy);
  const seq::Sequence partner = seq::Sequence::from_codes(truth);
  std::vector<correct::Evidence> evidence(
      4, full_evidence(partner, static_cast<std::uint32_t>(noisy.size())));
  const seq::Sequence fixed = correct::correct_read(read, evidence, {});
  EXPECT_EQ(fixed, seq::Sequence::from_codes(truth));
}

TEST(CorrectRead, RestoresDeletedBase) {
  Xoshiro256 rng(13);
  const Codes truth = random_codes(100, rng);
  Codes noisy = truth;
  noisy.erase(noisy.begin() + 55);
  const seq::Sequence read = seq::Sequence::from_codes(noisy);
  const seq::Sequence partner = seq::Sequence::from_codes(truth);
  std::vector<correct::Evidence> evidence(
      4, full_evidence(partner, static_cast<std::uint32_t>(noisy.size())));
  const seq::Sequence fixed = correct::correct_read(read, evidence, {});
  EXPECT_EQ(fixed, seq::Sequence::from_codes(truth));
}

TEST(CorrectRead, LowCoverageLeavesReadAlone) {
  Xoshiro256 rng(14);
  const Codes truth = random_codes(80, rng);
  Codes noisy = truth;
  noisy[10] = static_cast<std::uint8_t>((noisy[10] + 2) & 3);
  const seq::Sequence read = seq::Sequence::from_codes(noisy);
  const seq::Sequence partner = seq::Sequence::from_codes(truth);
  // Only 1 partner < min_coverage 3: no change.
  std::vector<correct::Evidence> evidence(1, full_evidence(partner, 80));
  const seq::Sequence fixed = correct::correct_read(read, evidence, {});
  EXPECT_EQ(fixed, read);
}

TEST(CorrectRead, DisagreeingPartnersDoNotOverride) {
  Xoshiro256 rng(15);
  const Codes truth = random_codes(60, rng);
  const seq::Sequence read = seq::Sequence::from_codes(truth);
  // Four partners each mutated differently: no majority against the read.
  std::vector<seq::Sequence> partners;
  for (int i = 0; i < 4; ++i)
    partners.push_back(seq::Sequence::from_codes(mutate(truth, 0.25, rng)));
  std::vector<correct::Evidence> evidence;
  for (const auto& partner : partners) {
    correct::Evidence ev = full_evidence(partner, 60);
    evidence.push_back(ev);
  }
  correct::CorrectionParams params;
  params.majority = 0.75;
  const seq::Sequence fixed = correct::correct_read(read, evidence, params);
  // The read should survive mostly unchanged.
  const auto before = read.unpack();
  const auto after = fixed.unpack();
  std::size_t same = 0;
  for (std::size_t i = 0; i < std::min(before.size(), after.size()); ++i)
    same += before[i] == after[i] ? 1 : 0;
  EXPECT_GT(same, before.size() * 8 / 10);
}

// ---------- end-to-end correction quality ----------

TEST(CorrectReads, ImprovesIdentityAgainstGroundTruth) {
  // Sample noisy reads from a genome, overlap them, correct them, and
  // verify reads moved closer to their true fragments.
  wl::DatasetSpec spec = wl::tiny_spec();
  spec.genome.length = 12'000;
  spec.reads.coverage = 12;
  spec.reads.error_rate = 0.06;
  spec.reads.n_rate = 0;
  const wl::SampledDataset dataset = wl::synthesize(spec, 41);

  // Need the genome again for ground truth: regenerate deterministically.
  Xoshiro256 rng(41);
  const seq::Sequence genome = wl::generate_genome(spec.genome, rng);

  const auto band = kmer::reliable_bounds(
      kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = band.lo;
  config.hi = band.hi;
  const pipeline::TaskSet tasks = pipeline::run_serial(dataset.reads, config, 2);
  core::EngineConfig engine;
  engine.filter = align::AlignmentFilter{80, 150};
  std::vector<align::AlignmentRecord> records;
  {
    rt::World world(2);
    std::vector<std::vector<align::AlignmentRecord>> per_rank(2);
    world.run([&](rt::Rank& rank) {
      per_rank[rank.id()] = core::bsp_align(rank, dataset.reads, tasks.bounds,
                                            tasks.per_rank[rank.id()], engine)
                                .accepted;
    });
    for (auto& part : per_rank) records.insert(records.end(), part.begin(), part.end());
  }

  const correct::CorrectedSet corrected = correct::correct_reads(dataset.reads, records);
  ASSERT_EQ(corrected.reads.size(), dataset.reads.size());
  EXPECT_GT(corrected.stats.reads_changed, 0u);

  auto identity_to_truth = [&](const seq::Sequence& read, const wl::ReadOrigin& origin) {
    seq::Sequence fragment =
        genome.subseq(origin.genome_begin, origin.genome_end - origin.genome_begin);
    if (origin.reverse_strand) fragment = fragment.reverse_complement();
    const auto a = read.unpack();
    const auto b = fragment.unpack();
    const std::size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    const TracebackResult tb = banded_global_traceback(a, b, diff + 80);
    return cigar_identity(tb.cigar);
  };

  double before = 0, after = 0;
  std::size_t measured = 0;
  for (seq::ReadId id = 0; id < dataset.reads.size() && measured < 40; ++id) {
    before += identity_to_truth(dataset.reads.get(id).sequence, dataset.origins[id]);
    after += identity_to_truth(corrected.reads[id], dataset.origins[id]);
    ++measured;
  }
  before /= static_cast<double>(measured);
  after /= static_cast<double>(measured);
  EXPECT_GT(after, before + 0.01) << "correction did not improve identity: " << before
                                  << " -> " << after;
  EXPECT_GT(after, 0.97);
}
