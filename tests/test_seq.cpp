// Unit and property tests for gnb_seq: alphabets, packed sequences,
// FASTA/FASTQ parsing, read store and size-balanced partitioning.

#include <gtest/gtest.h>

#include <sstream>

#include "seq/alphabet.hpp"
#include "seq/fasta.hpp"
#include "seq/read_store.hpp"
#include "seq/sequence.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace gnb;
using namespace gnb::seq;

namespace {

std::string random_dna(std::size_t length, Xoshiro256& rng, double n_rate = 0.0) {
  std::string s(length, 'A');
  for (auto& ch : s) {
    if (n_rate > 0 && rng.uniform() < n_rate) {
      ch = 'N';
    } else {
      ch = dna_decode(static_cast<std::uint8_t>(rng.below(4)));
    }
  }
  return s;
}

}  // namespace

// ---------- alphabet ----------

TEST(Alphabet, EncodeDecodeRoundTrip) {
  for (char base : {'A', 'C', 'G', 'T', 'N'}) {
    EXPECT_EQ(dna_decode(dna_encode(base)), base);
  }
}

TEST(Alphabet, LowercaseAccepted) {
  EXPECT_EQ(dna_encode('a'), kA);
  EXPECT_EQ(dna_encode('g'), kG);
  EXPECT_EQ(dna_encode('n'), kN);
}

TEST(Alphabet, InvalidCharactersRejected) {
  EXPECT_EQ(dna_encode('X'), kInvalidCode);
  EXPECT_EQ(dna_encode('-'), kInvalidCode);
  EXPECT_EQ(dna_encode(' '), kInvalidCode);
  EXPECT_FALSE(is_dna_char('Z'));
  EXPECT_TRUE(is_dna_char('U'));  // RNA tolerated as T
}

TEST(Alphabet, ComplementPairs) {
  EXPECT_EQ(dna_complement(kA), kT);
  EXPECT_EQ(dna_complement(kT), kA);
  EXPECT_EQ(dna_complement(kC), kG);
  EXPECT_EQ(dna_complement(kG), kC);
  EXPECT_EQ(dna_complement(kN), kN);
}

TEST(Alphabet, ProteinRoundTrip) {
  for (std::uint8_t code = 0; code < 20; ++code)
    EXPECT_EQ(protein_encode(protein_decode(code)), code);
  EXPECT_EQ(protein_encode('B'), kInvalidCode);
  EXPECT_EQ(protein_encode('r'), protein_encode('R'));
}

// ---------- Sequence ----------

class SequenceRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SequenceRoundTrip, StringRoundTrip) {
  Xoshiro256 rng(GetParam() * 1000 + 17);
  const std::string s = random_dna(GetParam(), rng, 0.05);
  const Sequence seq = Sequence::from_string(s);
  EXPECT_EQ(seq.size(), s.size());
  EXPECT_EQ(seq.to_string(), s);
}

TEST_P(SequenceRoundTrip, SerializationRoundTrip) {
  Xoshiro256 rng(GetParam() * 2000 + 3);
  const Sequence seq = Sequence::from_string(random_dna(GetParam(), rng, 0.03));
  std::vector<std::uint8_t> buffer;
  seq.serialize(buffer);
  std::size_t offset = 0;
  const Sequence back = Sequence::deserialize(buffer, offset);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(back, seq);
}

TEST_P(SequenceRoundTrip, ReverseComplementIsInvolution) {
  Xoshiro256 rng(GetParam() * 3000 + 9);
  const Sequence seq = Sequence::from_string(random_dna(GetParam(), rng, 0.02));
  EXPECT_EQ(seq.reverse_complement().reverse_complement(), seq);
}

TEST_P(SequenceRoundTrip, UnpackMatchesCodeAt) {
  Xoshiro256 rng(GetParam() * 4000 + 11);
  const Sequence seq = Sequence::from_string(random_dna(GetParam(), rng, 0.08));
  const auto codes = seq.unpack();
  ASSERT_EQ(codes.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(codes[i], seq.code_at(i));
}

// Word boundaries (32 bases per word) are where packing bugs live.
INSTANTIATE_TEST_SUITE_P(Lengths, SequenceRoundTrip,
                         ::testing::Values(1, 2, 31, 32, 33, 63, 64, 65, 100, 1000));

TEST(Sequence, KnownReverseComplement) {
  const Sequence seq = Sequence::from_string("ACGTN");
  EXPECT_EQ(seq.reverse_complement().to_string(), "NACGT");
}

TEST(Sequence, NPositionsSurviveRoundTrips) {
  const Sequence seq = Sequence::from_string("ANNGTNA");
  EXPECT_TRUE(seq.is_n(1));
  EXPECT_TRUE(seq.is_n(2));
  EXPECT_TRUE(seq.is_n(5));
  EXPECT_FALSE(seq.is_n(0));
  EXPECT_EQ(seq.n_count(), 3u);
  EXPECT_EQ(seq.reverse_complement().to_string(), "TNACNNT");
}

TEST(Sequence, Subseq) {
  const Sequence seq = Sequence::from_string("ACGTNACGT");
  EXPECT_EQ(seq.subseq(2, 4).to_string(), "GTNA");
  EXPECT_EQ(seq.subseq(0, 9).to_string(), "ACGTNACGT");
  EXPECT_EQ(seq.subseq(8, 1).to_string(), "T");
  EXPECT_EQ(seq.subseq(3, 0).size(), 0u);
}

TEST(Sequence, InvalidCharacterThrows) {
  EXPECT_THROW(Sequence::from_string("ACGX"), Error);
}

TEST(Sequence, FromCodesValidation) {
  const std::vector<std::uint8_t> good{0, 1, 2, 3, 4};
  EXPECT_EQ(Sequence::from_codes(good).to_string(), "ACGTN");
  const std::vector<std::uint8_t> bad{0, 9};
  EXPECT_THROW(Sequence::from_codes(bad), Error);
}

TEST(Sequence, DeserializeTruncatedThrows) {
  const Sequence seq = Sequence::from_string("ACGTACGTACGT");
  std::vector<std::uint8_t> buffer;
  seq.serialize(buffer);
  buffer.resize(buffer.size() - 1);
  std::size_t offset = 0;
  EXPECT_THROW(Sequence::deserialize(buffer, offset), Error);
}

TEST(Sequence, NFraction) {
  EXPECT_DOUBLE_EQ(n_fraction(Sequence::from_string("ANAN")), 0.5);
  EXPECT_DOUBLE_EQ(n_fraction(Sequence()), 0.0);
}

TEST(Sequence, OrientedCodesMatchesBothOrientations) {
  // The one decode helper every consumer (engine, xdrop overload, read
  // cache) shares: forward == unpack(), rc == reverse_complement().unpack().
  Xoshiro256 rng(7);
  for (const std::size_t length : {1u, 32u, 33u, 257u}) {
    const Sequence seq = Sequence::from_string(random_dna(length, rng, /*n_rate=*/0.05));
    EXPECT_EQ(oriented_codes(seq, false), seq.unpack());
    EXPECT_EQ(oriented_codes(seq, true), seq.reverse_complement().unpack());
  }
  EXPECT_TRUE(oriented_codes(Sequence(), false).empty());
  EXPECT_TRUE(oriented_codes(Sequence(), true).empty());
}

// ---------- FASTA / FASTQ ----------

TEST(Fasta, ParsesMultilineRecords) {
  std::istringstream in(">read1 first comment\nACGT\nACGT\n>read2\nTTTT\n");
  FastaReader reader(in);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->name, "read1");
  EXPECT_EQ(r1->comment, "first comment");
  EXPECT_EQ(r1->sequence.to_string(), "ACGTACGT");
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->name, "read2");
  EXPECT_EQ(r2->sequence.to_string(), "TTTT");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  std::istringstream in(">r\r\nAC\r\n\r\nGT\r\n");
  FastaReader reader(in);
  auto r = reader.next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->sequence.to_string(), "ACGT");
}

TEST(Fasta, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  FastaReader reader(in);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Fasta, MissingHeaderThrows) {
  std::istringstream in("ACGT\n");
  FastaReader reader(in);
  EXPECT_THROW(reader.next(), Error);
}

TEST(Fasta, RecordWithoutSequenceThrows) {
  std::istringstream in(">only_header\n>next\nACGT\n");
  FastaReader reader(in);
  EXPECT_THROW(reader.next(), Error);
}

TEST(Fasta, WriterRoundTrip) {
  std::ostringstream out;
  FastaWriter writer(out, 10);
  FastaRecord record;
  record.name = "r1";
  record.comment = "c";
  record.sequence = Sequence::from_string("ACGTACGTACGTACGTACGTACG");
  writer.write(record);
  std::istringstream in(out.str());
  FastaReader reader(in);
  auto back = reader.next();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "r1");
  EXPECT_EQ(back->sequence, record.sequence);
}

TEST(Fastq, ParsesFourLineRecords) {
  std::istringstream in("@r1 comment\nACGT\n+\nIIII\n@r2\nGG\n+r2\nII\n");
  FastqReader reader(in);
  auto r1 = reader.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->name, "r1");
  EXPECT_EQ(r1->sequence.to_string(), "ACGT");
  auto r2 = reader.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->sequence.to_string(), "GG");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Fastq, QualityLengthMismatchThrows) {
  std::istringstream in("@r1\nACGT\n+\nII\n");
  FastqReader reader(in);
  EXPECT_THROW(reader.next(), Error);
}

TEST(Fastq, TruncatedRecordThrows) {
  std::istringstream in("@r1\nACGT\n");
  FastqReader reader(in);
  EXPECT_THROW(reader.next(), Error);
}

// ---------- ReadStore ----------

TEST(ReadStore, DenseIdsAndTotals) {
  ReadStore store;
  const ReadId a = store.add("a", Sequence::from_string("ACGT"));
  const ReadId b = store.add("b", Sequence::from_string("AA"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_bases(), 6u);
  EXPECT_EQ(store.get(1).name, "b");
}

TEST(ReadStore, SerializeReadRoundTrip) {
  const Read read{7, "x", Sequence::from_string("ACGTNACGTACGTNN")};
  std::vector<std::uint8_t> buffer;
  serialize_read(read, buffer);
  EXPECT_EQ(buffer.size(), serialized_read_bytes(read));
  std::size_t offset = 0;
  const Read back = deserialize_read(buffer, offset);
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.sequence, read.sequence);
  EXPECT_EQ(offset, buffer.size());
}

// ---------- partitioning ----------

class PartitionBySize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionBySize, CoversAllReadsInOrder) {
  Xoshiro256 rng(GetParam());
  std::vector<std::size_t> lengths(257);
  for (auto& len : lengths) len = 100 + rng.below(5000);
  const auto bounds = partition_by_size(lengths, GetParam());
  ASSERT_EQ(bounds.size(), GetParam() + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), lengths.size());
  for (std::size_t r = 0; r + 1 < bounds.size(); ++r) EXPECT_LE(bounds[r], bounds[r + 1]);
}

TEST_P(PartitionBySize, LoadIsRoughlyBalanced) {
  Xoshiro256 rng(GetParam() + 99);
  std::vector<std::size_t> lengths(1000);
  std::uint64_t total = 0;
  for (auto& len : lengths) {
    len = 500 + rng.below(2000);
    total += len;
  }
  const auto bounds = partition_by_size(lengths, GetParam());
  const double ideal = static_cast<double>(total) / static_cast<double>(GetParam());
  for (std::size_t r = 0; r < GetParam(); ++r) {
    std::uint64_t load = 0;
    for (ReadId id = bounds[r]; id < bounds[r + 1]; ++id) load += lengths[id];
    // Within one max read length of ideal.
    EXPECT_NEAR(static_cast<double>(load), ideal, 2600.0);
  }
}

TEST_P(PartitionBySize, OwnerLookupMatchesBounds) {
  Xoshiro256 rng(GetParam() + 7);
  std::vector<std::size_t> lengths(123);
  for (auto& len : lengths) len = 1 + rng.below(100);
  const auto bounds = partition_by_size(lengths, GetParam());
  for (ReadId id = 0; id < lengths.size(); ++id) {
    const std::size_t owner = partition_owner(bounds, id);
    EXPECT_GE(id, bounds[owner]);
    EXPECT_LT(id, bounds[owner + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionBySize, ::testing::Values(1, 2, 3, 7, 16, 64));

TEST(PartitionBySize, MoreRanksThanReads) {
  const std::vector<std::size_t> lengths{10, 10};
  const auto bounds = partition_by_size(lengths, 5);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 2u);
  // Every read still has exactly one owner.
  EXPECT_EQ(partition_owner(bounds, 0), 0u);
  std::size_t owner1 = partition_owner(bounds, 1);
  EXPECT_LT(owner1, 5u);
}

TEST(PartitionBySize, OwnerLookupOutOfRangeAborts) {
  const std::vector<std::size_t> lengths{10, 10, 10};
  const auto bounds = partition_by_size(lengths, 2);
  EXPECT_DEATH((void)partition_owner(bounds, 3), "");
}

TEST(Sequence, IndexOutOfRangeAborts) {
  const Sequence seq = Sequence::from_string("ACGT");
  EXPECT_DEATH((void)seq.code_at(4), "");
}

TEST(PartitionBySize, EmptyInput) {
  const std::vector<std::size_t> lengths;
  const auto bounds = partition_by_size(lengths, 3);
  EXPECT_EQ(bounds, (std::vector<ReadId>{0, 0, 0, 0}));
}
