// Tests for the DiBELLA pipeline: serial reference, task assignment with
// the owner invariant, and serial/distributed equivalence.

#include <gtest/gtest.h>

#include <tuple>

#include "kmer/bella_filter.hpp"
#include "pipeline/distributed.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::pipeline;

namespace {

struct Fixture {
  wl::SampledDataset dataset;
  PipelineConfig config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 15'000;
    spec.reads.coverage = 8;
    fx.dataset = wl::synthesize(spec, 11);
    const auto bounds = kmer::reliable_bounds(
        kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
    fx.config.k = spec.k;
    fx.config.lo = bounds.lo;
    fx.config.hi = bounds.hi;
    fx.config.keep_frac = 1.0;
    return fx;
  }();
  return f;
}

bool tasks_equal(const kmer::AlignTask& x, const kmer::AlignTask& y) {
  return x.a == y.a && x.b == y.b && x.seed.a_pos == y.seed.a_pos &&
         x.seed.b_pos == y.seed.b_pos && x.seed.length == y.seed.length &&
         x.seed.b_reversed == y.seed.b_reversed;
}

}  // namespace

TEST(Pipeline, BoundsCoverStore) {
  const auto& f = fixture();
  const auto bounds = compute_bounds(f.dataset.reads, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), f.dataset.reads.size());
}

TEST(Pipeline, SerialSatisfiesOwnerInvariant) {
  const auto& f = fixture();
  const TaskSet tasks = run_serial(f.dataset.reads, f.config, 4);
  check_owner_invariant(tasks);  // aborts on violation
  EXPECT_GT(tasks.total_tasks(), 0u);
}

TEST(Pipeline, AssignBalancesCounts) {
  const auto& f = fixture();
  const TaskSet tasks = run_serial(f.dataset.reads, f.config, 6);
  std::size_t max_load = 0;
  for (const auto& per_rank : tasks.per_rank) max_load = std::max(max_load, per_rank.size());
  // Greedy two-choice balancing under the owner invariant: hot reads pin
  // their tasks to two ranks, so perfect balance is impossible; the max
  // must still stay within a small factor of the mean.
  const double mean = static_cast<double>(tasks.total_tasks()) / 6.0;
  EXPECT_LT(static_cast<double>(max_load), 3.0 * mean + 50.0);
}

TEST(Pipeline, SerialDeterministic) {
  const auto& f = fixture();
  const TaskSet a = run_serial(f.dataset.reads, f.config, 3);
  const TaskSet b = run_serial(f.dataset.reads, f.config, 3);
  const auto ua = a.sorted_union();
  const auto ub = b.sorted_union();
  ASSERT_EQ(ua.size(), ub.size());
  for (std::size_t i = 0; i < ua.size(); ++i) EXPECT_TRUE(tasks_equal(ua[i], ub[i]));
}

TEST(Pipeline, RankCountDoesNotChangeTaskSet) {
  const auto& f = fixture();
  const auto u2 = run_serial(f.dataset.reads, f.config, 2).sorted_union();
  const auto u7 = run_serial(f.dataset.reads, f.config, 7).sorted_union();
  ASSERT_EQ(u2.size(), u7.size());
  for (std::size_t i = 0; i < u2.size(); ++i) EXPECT_TRUE(tasks_equal(u2[i], u7[i]));
}

class DistributedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributedEquivalence, MatchesSerialTaskSet) {
  const auto& f = fixture();
  const std::size_t nranks = GetParam();
  const TaskSet serial = run_serial(f.dataset.reads, f.config, nranks);
  const auto serial_union = serial.sorted_union();

  const auto bounds = compute_bounds(f.dataset.reads, nranks);
  TaskSet distributed;
  distributed.bounds = bounds;
  distributed.per_rank.resize(nranks);
  rt::World world(nranks);
  world.run([&](rt::Rank& rank) {
    distributed.per_rank[rank.id()] =
        run_distributed(rank, f.dataset.reads, f.config, bounds);
  });
  check_owner_invariant(distributed);
  const auto distributed_union = distributed.sorted_union();

  ASSERT_EQ(distributed_union.size(), serial_union.size());
  for (std::size_t i = 0; i < serial_union.size(); ++i)
    EXPECT_TRUE(tasks_equal(distributed_union[i], serial_union[i]))
        << "task " << i << " differs: (" << serial_union[i].a << "," << serial_union[i].b
        << ") vs (" << distributed_union[i].a << "," << distributed_union[i].b << ")";
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedEquivalence, ::testing::Values(1, 2, 3, 5, 8));

TEST(Pipeline, SketchingPreservesMostTasks) {
  const auto& f = fixture();
  PipelineConfig sketched = f.config;
  sketched.keep_frac = 0.3;
  const auto full = run_serial(f.dataset.reads, f.config, 2).total_tasks();
  const auto with_sketch = run_serial(f.dataset.reads, sketched, 2).total_tasks();
  EXPECT_GT(with_sketch, full / 2);  // overlaps share many k-mers
  EXPECT_LE(with_sketch, full);
}

TEST(Pipeline, EmptyStoreYieldsNoTasks) {
  seq::ReadStore empty;
  PipelineConfig config;
  const TaskSet tasks = run_serial(empty, config, 3);
  EXPECT_EQ(tasks.total_tasks(), 0u);
  EXPECT_EQ(tasks.bounds.back(), 0u);
}

TEST(Pipeline, SingleReadYieldsNoTasks) {
  seq::ReadStore store;
  store.add("only", seq::Sequence::from_string("ACGTACGTACGTACGTACGTACGTACGT"));
  PipelineConfig config;
  config.k = 15;
  config.lo = 1;
  config.hi = 100;
  EXPECT_EQ(run_serial(store, config, 2).total_tasks(), 0u);
}

TEST(Pipeline, MoreRanksThanReads) {
  const auto& f = fixture();
  // Way more ranks than needed: must not crash, invariant must hold.
  const TaskSet tasks = run_serial(f.dataset.reads, f.config, 64);
  check_owner_invariant(tasks);
  EXPECT_GT(tasks.total_tasks(), 0u);
}
