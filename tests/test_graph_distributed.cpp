// The serial-oracle harness for the distributed graph phases: every result
// pipeline::run_distributed_assembly produces — edge listing, reduced edge
// set, contig paths, assembly stats, and the GFA text — must be
// *byte-identical* to graph::assemble_serial over the same record multiset,
// at any rank count, any record sharding, either overlap engine, and under
// crash injection. The suite also pins the transitive reduction against an
// independent brute-force reference and property-tests the Myers
// invariants on random mirror-symmetric graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "align/result.hpp"
#include "core/async.hpp"
#include "core/bsp.hpp"
#include "graph/assembly.hpp"
#include "graph/overlap_graph.hpp"
#include "pipeline/assembly.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/fault.hpp"
#include "rt/world.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using graph::NodeId;
using graph::OverlapEdge;

// ThreadSanitizer slows the alignment compute producing the input records
// by an order of magnitude; shrink the genomes there so the rank x engine
// x chaos matrix stays runnable in CI.
#if defined(__SANITIZE_THREAD__)
#define GNB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GNB_TSAN_BUILD 1
#endif
#endif

namespace {

struct Workload {
  wl::SampledDataset dataset;
  std::vector<align::AlignmentRecord> records;  // sorted union, all ranks
};

/// Synthesize a dataset and produce its accepted-alignment records with one
/// engine run — the record multiset both the oracle and the distributed
/// phases consume.
Workload make_workload(std::uint64_t seed, bool async_engine = false,
                       std::size_t engine_ranks = 4, std::size_t genome_length = 0) {
  Workload w;
  wl::DatasetSpec spec = wl::ecoli30x_spec();
#ifdef GNB_TSAN_BUILD
  spec.genome.length = genome_length ? genome_length : 2'500;
#else
  spec.genome.length = genome_length ? genome_length : 8'000;
#endif
  w.dataset = wl::synthesize(spec, seed);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  const pipeline::TaskSet tasks =
      pipeline::run_serial(w.dataset.reads, config, engine_ranks);
  rt::World world(engine_ranks);
  std::vector<core::EngineResult> results(engine_ranks);
  const core::EngineConfig engine;
  world.run([&](rt::Rank& rank) {
    results[rank.id()] = async_engine
                             ? core::async_align(rank, w.dataset.reads, tasks.bounds,
                                                 tasks.per_rank[rank.id()], engine)
                             : core::bsp_align(rank, w.dataset.reads, tasks.bounds,
                                               tasks.per_rank[rank.id()], engine);
  });
  for (const auto& result : results)
    w.records.insert(w.records.end(), result.accepted.begin(), result.accepted.end());
  std::sort(w.records.begin(), w.records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b) < std::tie(y.read_a, y.read_b);
            });
  return w;
}

/// Shard the record union by the partition owner of read_a — the sharding
/// the real pipeline produces.
std::vector<std::vector<align::AlignmentRecord>> shard_by_owner(
    const std::vector<align::AlignmentRecord>& records,
    const std::vector<seq::ReadId>& bounds) {
  std::vector<std::vector<align::AlignmentRecord>> shards(bounds.size() - 1);
  for (const align::AlignmentRecord& record : records) {
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), record.read_a);
    shards[static_cast<std::size_t>(it - bounds.begin()) - 1].push_back(record);
  }
  return shards;
}

/// Outcome of one distributed run: the broadcast result (identical on every
/// surviving rank — asserted) plus the recovery counters.
struct DistributedOutcome {
  graph::AssemblyResult result;
  std::uint64_t restarts = 0;
  std::uint64_t reduce_rounds = 0;
};

DistributedOutcome run_distributed(const Workload& w, std::size_t ranks,
                                   std::vector<std::vector<align::AlignmentRecord>> shards,
                                   const rt::FaultPlan& plan = {},
                                   const pipeline::DistributedAssemblyOptions& options = {}) {
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, ranks);
  EXPECT_EQ(shards.size(), ranks);
  rt::World world(ranks);
  if (plan.enabled()) world.set_faults(plan);
  std::vector<pipeline::DistributedAssembly> per_rank(ranks);
  world.run([&](rt::Rank& rank) {
    per_rank[rank.id()] = pipeline::run_distributed_assembly(
        rank, w.dataset.reads, bounds, shards[rank.id()], options);
  });
  DistributedOutcome outcome;
  bool found = false;
  for (const pipeline::DistributedAssembly& a : per_rank) {
    if (a.result.gfa.empty()) continue;  // crashed rank: default-constructed slot
    if (!found) {
      outcome.result = a.result;
      outcome.restarts = a.restarts;
      outcome.reduce_rounds = a.reduce_rounds;
      found = true;
    } else {
      // Broadcast contract: every survivor holds the byte-identical result.
      EXPECT_TRUE(a.result == outcome.result) << "survivor results diverge";
    }
  }
  EXPECT_TRUE(found) << "no rank survived";
  return outcome;
}

void expect_assembly_equal(const graph::AssemblyResult& got,
                           const graph::AssemblyResult& want, const std::string& label) {
  EXPECT_TRUE(got.graph_stats == want.graph_stats) << label << ": graph stats diverge";
  EXPECT_EQ(got.contained, want.contained) << label << ": containment diverges";
  ASSERT_EQ(got.edges.size(), want.edges.size()) << label << ": edge count diverges";
  for (std::size_t i = 0; i < want.edges.size(); ++i)
    ASSERT_TRUE(got.edges[i] == want.edges[i]) << label << ": edge " << i << " diverges";
  ASSERT_EQ(got.contigs.size(), want.contigs.size()) << label << ": contig count diverges";
  for (std::size_t i = 0; i < want.contigs.size(); ++i)
    ASSERT_TRUE(got.contigs[i] == want.contigs[i]) << label << ": contig " << i;
  EXPECT_TRUE(got.stats == want.stats) << label << ": assembly stats diverge";
  EXPECT_EQ(got.gfa, want.gfa) << label << ": GFA bytes diverge";
  EXPECT_TRUE(got == want) << label;  // and the full struct, for new fields
}

}  // namespace

// --- oracle parity across rank counts ---

TEST(GraphDistributed, MatchesSerialOracleAtEveryRankCount) {
  const Workload w = make_workload(11);
  const graph::AssemblyResult oracle = graph::assemble_serial(w.records, w.dataset.reads);
  for (const std::size_t ranks : {1u, 2u, 4u, 8u}) {
    const std::vector<seq::ReadId> bounds =
        pipeline::compute_bounds(w.dataset.reads, ranks);
    const DistributedOutcome outcome =
        run_distributed(w, ranks, shard_by_owner(w.records, bounds));
    expect_assembly_equal(outcome.result, oracle, "ranks=" + std::to_string(ranks));
    EXPECT_EQ(outcome.restarts, 0u);
    EXPECT_GE(outcome.reduce_rounds, 1u);
  }
}

TEST(GraphDistributed, PrunedAssemblyAlsoMatchesOracle) {
  const Workload w = make_workload(12);
  graph::AssemblyOptions assembly;
  assembly.prune = true;
  const graph::AssemblyResult oracle =
      graph::assemble_serial(w.records, w.dataset.reads, assembly);
  pipeline::DistributedAssemblyOptions options;
  options.assembly = assembly;
  for (const std::size_t ranks : {2u, 4u}) {
    const std::vector<seq::ReadId> bounds =
        pipeline::compute_bounds(w.dataset.reads, ranks);
    const DistributedOutcome outcome =
        run_distributed(w, ranks, shard_by_owner(w.records, bounds), {}, options);
    expect_assembly_equal(outcome.result, oracle,
                          "pruned ranks=" + std::to_string(ranks));
  }
}

// --- sharding invariance: any sharding with the same union is equivalent ---

TEST(GraphDistributed, RecordShardingDoesNotAffectResult) {
  const Workload w = make_workload(13);
  const std::size_t ranks = 4;
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, ranks);
  const DistributedOutcome by_owner =
      run_distributed(w, ranks, shard_by_owner(w.records, bounds));
  // Round-robin sharding: maximally misaligned with the owner map.
  std::vector<std::vector<align::AlignmentRecord>> round_robin(ranks);
  for (std::size_t i = 0; i < w.records.size(); ++i)
    round_robin[i % ranks].push_back(w.records[i]);
  const DistributedOutcome scattered = run_distributed(w, ranks, std::move(round_robin));
  expect_assembly_equal(scattered.result, by_owner.result, "round-robin sharding");
  // Everything-on-one-rank sharding.
  std::vector<std::vector<align::AlignmentRecord>> lopsided(ranks);
  lopsided[ranks - 1] = w.records;
  const DistributedOutcome one_rank = run_distributed(w, ranks, std::move(lopsided));
  expect_assembly_equal(one_rank.result, by_owner.result, "single-shard sharding");
}

// --- engine independence ---

TEST(GraphDistributed, BothEnginesFeedIdenticalAssemblies) {
  const Workload bsp = make_workload(14, /*async_engine=*/false);
  const Workload async = make_workload(14, /*async_engine=*/true);
  // Backend parity upstream: the engines accept the same records, so the
  // assemblies must be byte-identical end to end.
  const graph::AssemblyResult oracle_bsp =
      graph::assemble_serial(bsp.records, bsp.dataset.reads);
  const graph::AssemblyResult oracle_async =
      graph::assemble_serial(async.records, async.dataset.reads);
  expect_assembly_equal(oracle_async, oracle_bsp, "engine oracle");
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(bsp.dataset.reads, 4);
  const DistributedOutcome from_async =
      run_distributed(async, 4, shard_by_owner(async.records, bounds));
  expect_assembly_equal(from_async.result, oracle_bsp, "async-engine records");
}

// --- crash injection: exactly-once contribution, unchanged bytes ---

TEST(GraphDistributed, CrashDuringGraphPhasesRecoversByteIdentical) {
  const Workload w = make_workload(15);
  const graph::AssemblyResult oracle = graph::assemble_serial(w.records, w.dataset.reads);
  const std::size_t ranks = 4;
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, ranks);
  // Crash steps chosen to land in different phases: the attempt barrier
  // region (build), the reduction rounds, and the contig collectives.
  struct Plan {
    const char* spec;
    // A death at the attempt-entry barrier (step 0) needs no restart: the
    // first attempt already opens with the post-death membership. Any
    // later step lands mid-attempt and must force one.
    std::uint64_t min_restarts;
  };
  const Plan plans[] = {
      {"seed=21,crash@1:0", 0},            // dies at the very first collective
      {"seed=22,crash@2:3", 1},            // dies during build
      {"seed=23,crash@0:7", 1},            // dies in the reduction rounds
      {"seed=24,crash@3:2,crash@1:9", 1},  // two deaths, different attempts
  };
  for (const Plan& plan : plans) {
    const DistributedOutcome outcome = run_distributed(
        w, ranks, shard_by_owner(w.records, bounds), rt::FaultPlan::parse(plan.spec));
    expect_assembly_equal(outcome.result, oracle, std::string("faults ") + plan.spec);
    EXPECT_GE(outcome.restarts, plan.min_restarts) << plan.spec;
  }
}

TEST(GraphDistributed, RestartedRankRejoinsAssemblyByteIdentical) {
  // A rank dies mid-build and comes back with empty volatile state: the
  // attempt loop re-admits it at an attempt boundary, where each attempt
  // rebuilds purely from durable manifests — so the rejoiner contributes
  // cleanly and the assembly stays byte-identical to the oracle.
  const Workload w = make_workload(17);
  const graph::AssemblyResult oracle = graph::assemble_serial(w.records, w.dataset.reads);
  const std::size_t ranks = 4;
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, ranks);
  const DistributedOutcome outcome =
      run_distributed(w, ranks, shard_by_owner(w.records, bounds),
                      rt::FaultPlan::parse("seed=26,crash@1:3,restart@1:0"));
  expect_assembly_equal(outcome.result, oracle, "restart during build");
  EXPECT_GE(outcome.restarts, 1u);
}

TEST(GraphDistributed, AttemptLoopIsBoundedByConfiguredAttempts) {
  // With max_recovery_attempts = 1, the membership change forced by a
  // mid-attempt death exceeds the budget: every alive rank throws the
  // typed UnrecoverableError unanimously instead of restarting forever.
  const Workload w = make_workload(18);
  const std::size_t ranks = 4;
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, ranks);
  const auto shards = shard_by_owner(w.records, bounds);
  pipeline::DistributedAssemblyOptions options;
  options.proto.max_recovery_attempts = 1;
  rt::World world(ranks);
  world.set_faults(rt::FaultPlan::parse("seed=27,crash@2:3"));
  std::vector<pipeline::DistributedAssembly> per_rank(ranks);
  EXPECT_THROW(world.run([&](rt::Rank& rank) {
    per_rank[rank.id()] = pipeline::run_distributed_assembly(
        rank, w.dataset.reads, bounds, shards[rank.id()], options);
  }),
               gnb::UnrecoverableError);
}

TEST(GraphDistributed, ChaosWithoutCrashLeavesBytesUnchanged) {
  const Workload w = make_workload(16);
  const graph::AssemblyResult oracle = graph::assemble_serial(w.records, w.dataset.reads);
  const std::vector<seq::ReadId> bounds = pipeline::compute_bounds(w.dataset.reads, 4);
  const DistributedOutcome outcome =
      run_distributed(w, 4, shard_by_owner(w.records, bounds),
                      rt::FaultPlan::parse("seed=31,straggle=0.3:200"));
  expect_assembly_equal(outcome.result, oracle, "straggle chaos");
  EXPECT_EQ(outcome.restarts, 0u);
}

// --- randomized fuzz sweep ---

TEST(GraphDistributed, FuzzParityAcrossSeedsAndRankCounts) {
#ifdef GNB_TSAN_BUILD
  constexpr std::uint64_t kTrials = 2;
#else
  constexpr std::uint64_t kTrials = 5;
#endif
  const std::size_t rank_choices[] = {1, 2, 4, 8};
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    Xoshiro256 rng(0x6A5FULL * (trial + 1));
    const std::size_t ranks = rank_choices[rng.below(4)];
#ifdef GNB_TSAN_BUILD
    const std::size_t genome = 2'000 + 500 * rng.below(4);
#else
    const std::size_t genome = 5'000 + 1'500 * rng.below(4);
#endif
    const Workload w = make_workload(40 + trial, /*async_engine=*/false, 4, genome);
    const graph::AssemblyResult oracle =
        graph::assemble_serial(w.records, w.dataset.reads);
    const std::vector<seq::ReadId> bounds =
        pipeline::compute_bounds(w.dataset.reads, ranks);
    const DistributedOutcome outcome =
        run_distributed(w, ranks, shard_by_owner(w.records, bounds));
    expect_assembly_equal(outcome.result, oracle,
                          "trial=" + std::to_string(trial) +
                              " ranks=" + std::to_string(ranks));
  }
}

// --- checkpoint round-trip of the broadcast format ---

TEST(GraphDistributed, PackUnpackRoundTripsTheResult) {
  const Workload w = make_workload(17);
  const graph::AssemblyResult oracle = graph::assemble_serial(w.records, w.dataset.reads);
  const rt::Bytes packed = pipeline::pack_assembly(oracle);
  const graph::AssemblyResult back = pipeline::unpack_assembly(packed);
  expect_assembly_equal(back, oracle, "pack/unpack");
}

// --- brute-force transitive-reduction oracle ---

namespace {

/// Mirror-symmetric random graph: every generated edge is inserted with its
/// mirror, unique (from, to) keys, no self/same-read targets.
std::vector<OverlapEdge> random_symmetric_edges(Xoshiro256& rng, std::size_t n_reads,
                                                std::size_t target_edges) {
  std::set<std::pair<NodeId, NodeId>> keys;
  std::vector<OverlapEdge> edges;
  for (std::size_t attempt = 0; attempt < target_edges * 4; ++attempt) {
    if (edges.size() >= 2 * target_edges) break;
    const NodeId u = rng.below(2 * n_reads);
    const NodeId v = rng.below(2 * n_reads);
    if (graph::node_read(u) == graph::node_read(v)) continue;
    const NodeId mu = graph::node_complement(v), mv = graph::node_complement(u);
    if (keys.count({u, v}) || keys.count({mu, mv})) continue;
    const auto overlap = static_cast<std::uint32_t>(60 + rng.below(400));
    const auto score = static_cast<std::int32_t>(overlap);
    edges.push_back(OverlapEdge{u, v, overlap, score, false});
    edges.push_back(OverlapEdge{mu, mv, overlap, score, false});
    keys.insert({u, v});
    keys.insert({mu, mv});
  }
  return edges;
}

/// Independent O(V * E^2) reference of the snapshot-round reduction: per
/// round, scan every live edge u->w for a live witness chain u->v->w under
/// the Myers condition, mirror-close the marks, apply, repeat to fixpoint.
std::set<std::pair<NodeId, NodeId>> reference_reduce(std::size_t n_reads,
                                                     std::vector<OverlapEdge> edges,
                                                     std::uint32_t fuzz) {
  std::set<std::pair<NodeId, NodeId>> reduced;
  const auto live = [&](NodeId from, NodeId to) {
    return reduced.count({from, to}) == 0;
  };
  const auto overlap_of = [&](NodeId from, NodeId to) -> std::uint32_t {
    for (const OverlapEdge& e : edges)
      if (e.from == from && e.to == to) return e.overlap;
    ADD_FAILURE() << "missing edge";
    return 0;
  };
  (void)n_reads;
  while (true) {
    std::vector<std::pair<NodeId, NodeId>> marks;
    for (const OverlapEdge& uw : edges) {
      if (!live(uw.from, uw.to)) continue;
      for (const OverlapEdge& uv : edges) {
        if (uv.from != uw.from || uv.to == uw.to || !live(uv.from, uv.to)) continue;
        for (const OverlapEdge& vw : edges) {
          if (vw.from != uv.to || vw.to != uw.to || !live(vw.from, vw.to)) continue;
          if (graph::node_read(vw.to) == graph::node_read(uw.from)) continue;
          if (overlap_of(uw.from, uw.to) <= uv.overlap + fuzz)
            marks.emplace_back(uw.from, uw.to);
        }
      }
    }
    std::size_t fresh = 0;
    for (const auto& [u, w] : marks) {
      fresh += reduced.insert({u, w}).second ? 1 : 0;
      fresh += reduced
                       .insert({graph::node_complement(w), graph::node_complement(u)})
                       .second
                   ? 1
                   : 0;
    }
    if (fresh == 0) break;
  }
  return reduced;
}

}  // namespace

TEST(TransitiveReductionOracle, MatchesBruteForceOnRandomGraphs) {
  constexpr std::uint64_t kGraphs = 30;
  for (std::uint64_t trial = 0; trial < kGraphs; ++trial) {
    Xoshiro256 rng(0xBEEF + trial);
    const std::size_t n_reads = 4 + rng.below(7);         // 4..10 reads
    const std::size_t target = 3 + rng.below(3 * n_reads);  // sparse..dense
    const std::uint32_t fuzz = trial % 3 == 0 ? 0 : 60;
    const std::vector<OverlapEdge> edges = random_symmetric_edges(rng, n_reads, target);
    graph::OverlapGraph g(n_reads, {}, edges);
    g.reduce_transitive(fuzz);
    const auto want = reference_reduce(n_reads, edges, fuzz);
    // Compare the reduced set edge by edge via the live listing.
    std::set<std::pair<NodeId, NodeId>> live_got;
    for (const OverlapEdge& e : g.live_edges()) live_got.insert({e.from, e.to});
    std::set<std::pair<NodeId, NodeId>> inserted;
    for (const OverlapEdge& e : edges) inserted.insert({e.from, e.to});
    for (const auto& key : inserted) {
      const bool survived = live_got.count(key) > 0;
      const bool reference_survived = want.count(key) == 0;
      EXPECT_EQ(survived, reference_survived)
          << "trial " << trial << " edge " << key.first << "->" << key.second
          << " fuzz " << fuzz;
    }
  }
}

TEST(TransitiveReductionOracle, NoTransitivelyImpliedEdgeSurvives) {
  // Myers fixpoint property: after reduction, no live edge u->w has a live
  // witness chain u->v->w satisfying the reduction condition — one more
  // round would mark nothing.
  constexpr std::uint64_t kGraphs = 20;
  for (std::uint64_t trial = 0; trial < kGraphs; ++trial) {
    Xoshiro256 rng(0xD00D + trial);
    const std::size_t n_reads = 5 + rng.below(6);
    const std::vector<OverlapEdge> edges =
        random_symmetric_edges(rng, n_reads, 2 + 2 * n_reads);
    graph::OverlapGraph g(n_reads, {}, edges);
    g.reduce_transitive(60);
    const std::vector<OverlapEdge> live = g.live_edges();
    for (const OverlapEdge& uw : live) {
      for (const OverlapEdge& uv : live) {
        if (uv.from != uw.from || uv.to == uw.to) continue;
        for (const OverlapEdge& vw : live) {
          if (vw.from != uv.to || vw.to != uw.to) continue;
          if (graph::node_read(vw.to) == graph::node_read(uw.from)) continue;
          EXPECT_GT(uw.overlap, uv.overlap + 60)
              << "trial " << trial << ": live edge " << uw.from << "->" << uw.to
              << " is transitively implied via " << uv.to;
        }
      }
    }
  }
}

TEST(TransitiveReductionOracle, MirrorSymmetryPreserved) {
  constexpr std::uint64_t kGraphs = 20;
  for (std::uint64_t trial = 0; trial < kGraphs; ++trial) {
    Xoshiro256 rng(0xCAFE + trial);
    const std::size_t n_reads = 4 + rng.below(8);
    const std::vector<OverlapEdge> edges =
        random_symmetric_edges(rng, n_reads, 2 + 2 * n_reads);
    graph::OverlapGraph g(n_reads, {}, edges);
    g.reduce_transitive(trial % 2 == 0 ? 0 : 120);
    std::set<std::pair<NodeId, NodeId>> live;
    for (const OverlapEdge& e : g.live_edges()) live.insert({e.from, e.to});
    for (const auto& [from, to] : live)
      EXPECT_TRUE(live.count({graph::node_complement(to), graph::node_complement(from)}))
          << "trial " << trial << ": surviving edge " << from << "->" << to
          << " lost its mirror";
  }
}
