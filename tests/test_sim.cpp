// Tests for the machine simulator: machine model geometry, workload
// assignment invariants, and the BSP/async performance models.

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_set>

#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sim/report.hpp"
#include "wl/presets.hpp"

using namespace gnb;
using namespace gnb::sim;

namespace {

wl::SimWorkload small_workload(std::uint64_t seed = 1) {
  wl::TaskModelParams params;
  params.n_reads = 2'000;
  params.n_tasks = 20'000;
  params.mean_length = 4'000;
  return wl::generate_sim_workload(params, seed);
}

SimOptions default_options() {
  SimOptions options;
  options.calibration.cells_per_second = 2e8;
  options.calibration.overhead_per_task = 3e-6;
  return options;
}

}  // namespace

// ---------- machine ----------

TEST(Machine, GeometryHelpers) {
  MachineParams machine = cori_knl(4);
  EXPECT_EQ(machine.total_ranks(), 4u * 64);
  EXPECT_EQ(machine.node_of(0), 0u);
  EXPECT_EQ(machine.node_of(63), 0u);
  EXPECT_EQ(machine.node_of(64), 1u);
  EXPECT_TRUE(machine.same_node(0, 63));
  EXPECT_FALSE(machine.same_node(63, 64));
}

TEST(Machine, LatencyIntraVsInter) {
  const MachineParams machine = cori_knl(2);
  EXPECT_LT(machine.latency(0, 1), machine.latency(0, 64));
}

TEST(Machine, BisectionGrowsSublinearly) {
  const double b8 = cori_knl(8).bisection_bandwidth();
  const double b64 = cori_knl(64).bisection_bandwidth();
  const double b512 = cori_knl(512).bisection_bandwidth();
  EXPECT_GT(b64, b8);
  EXPECT_GT(b512, b64);
  // Sublinear: 8x the nodes gives less than 8x the bisection.
  EXPECT_LT(b64 / b8, 8.0);
  EXPECT_LT(b512 / b64, 8.0);
}

TEST(Machine, SingleNodeBisectionIsIntranode) {
  const MachineParams machine = cori_knl(1);
  EXPECT_DOUBLE_EQ(machine.bisection_bandwidth(), machine.intranode_bandwidth);
}

TEST(Machine, EveryProfileKeepsIntranodeLatencyBelowInternode) {
  // Shared-memory transfer setup must never cost more than a NIC hop: a
  // profile violating this silently erases the simulated benefit of
  // hierarchy-aware aggregation (the threaded_host profile once shipped
  // with the two latencies equal).
  for (const MachineParams& machine :
       {cori_knl(1), cori_knl(8), cori_knl(512), threaded_host(1), threaded_host(8)}) {
    EXPECT_LE(machine.intranode_latency, machine.internode_latency);
    EXPECT_LT(machine.intranode_latency, machine.internode_latency)
        << "intranode and internode latency should differ, not merely tie";
  }
}

// ---------- assignment ----------

class AssignRanks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AssignRanks, ConservationInvariants) {
  const auto workload = small_workload();
  const SimAssignment assignment = assign(workload, GetParam());
  ASSERT_EQ(assignment.nranks(), GetParam());
  ASSERT_EQ(assignment.read_owner.size(), workload.read_lengths.size());

  // Every task lands somewhere exactly once.
  std::uint64_t tasks_total = 0, cells_total = 0;
  for (const auto& work : assignment.ranks) {
    tasks_total += work.total_tasks();
    cells_total += work.total_cells();
  }
  EXPECT_EQ(tasks_total, workload.tasks.size());
  EXPECT_EQ(cells_total, workload.total_cells());

  // Serve side mirrors pull side.
  std::uint64_t pulls = 0, pull_bytes = 0, serves = 0, serve_bytes = 0;
  for (std::size_t r = 0; r < assignment.nranks(); ++r) {
    pulls += assignment.ranks[r].pulls.size();
    pull_bytes += assignment.ranks[r].pull_bytes();
    serves += assignment.serve_count[r];
    serve_bytes += assignment.serve_bytes[r];
  }
  EXPECT_EQ(pulls, serves);
  EXPECT_EQ(pull_bytes, serve_bytes);

  // Partition bytes account for every read.
  std::uint64_t partition_total = 0;
  for (const auto& work : assignment.ranks) partition_total += work.partition_bytes;
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < workload.read_lengths.size(); ++i)
    expected += workload.read_bytes(i);
  EXPECT_EQ(partition_total, expected);
}

TEST_P(AssignRanks, PullsAreDeduplicatedPerRank) {
  const SimAssignment assignment = assign(small_workload(), GetParam());
  for (const auto& work : assignment.ranks) {
    std::unordered_set<std::uint32_t> reads;
    for (const auto& pull : work.pulls) {
      EXPECT_TRUE(reads.insert(pull.read).second) << "duplicate pull";
      EXPECT_NE(pull.owner, static_cast<std::uint32_t>(-1));
    }
  }
}

TEST_P(AssignRanks, PullOwnersAreCorrect) {
  const SimAssignment assignment = assign(small_workload(), GetParam());
  for (std::size_t r = 0; r < assignment.nranks(); ++r) {
    for (const auto& pull : assignment.ranks[r].pulls) {
      EXPECT_EQ(pull.owner, assignment.read_owner[pull.read]);
      EXPECT_NE(pull.owner, r) << "a rank never pulls its own read";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, AssignRanks, ::testing::Values(1, 2, 7, 64, 256));

TEST(Assign, SingleRankHasNoPulls) {
  const SimAssignment assignment = assign(small_workload(), 1);
  EXPECT_TRUE(assignment.ranks[0].pulls.empty());
  EXPECT_EQ(assignment.ranks[0].total_tasks(), small_workload().tasks.size());
}

TEST(Assign, CrossNodeBytesZeroOnOneNode) {
  const SimAssignment assignment = assign(small_workload(), 64);
  EXPECT_EQ(assignment.cross_node_bytes(64), 0u);
  EXPECT_GT(assignment.cross_node_bytes(16), 0u);
}

TEST(Assign, TaskCountsBalanced) {
  const SimAssignment assignment = assign(small_workload(), 16);
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& work : assignment.ranks) {
    lo = std::min<std::uint64_t>(lo, work.total_tasks());
    hi = std::max<std::uint64_t>(hi, work.total_tasks());
  }
  EXPECT_LT(hi, 2 * lo + 20);
}

TEST(Assign, LocalityAwarePullsNoMoreThanCountBalanced) {
  // The locality-aware policy routes a task to whichever owner already
  // pulls the other read, so it can only remove pull frames relative to
  // the count-balanced placement — while keeping every conservation
  // invariant (exercised above via the shared assign() path).
  const auto workload = small_workload();
  const SimAssignment balanced = assign(workload, 16, BalancePolicy::kCountBalanced);
  const SimAssignment local = assign(workload, 16, BalancePolicy::kLocalityAware);
  std::uint64_t balanced_pulls = 0, local_pulls = 0, local_tasks = 0;
  for (const auto& work : balanced.ranks) balanced_pulls += work.pulls.size();
  for (const auto& work : local.ranks) {
    local_pulls += work.pulls.size();
    local_tasks += work.total_tasks();
  }
  EXPECT_LE(local_pulls, balanced_pulls);
  EXPECT_EQ(local_tasks, workload.tasks.size());
}

TEST(Assign, WireModeShrinksPullBytesButNotRawBytes) {
  const auto workload = small_workload();
  const SimAssignment off =
      assign(workload, 16, BalancePolicy::kCountBalanced, proto::WireCompression::kOff);
  const SimAssignment packed =
      assign(workload, 16, BalancePolicy::kCountBalanced, proto::WireCompression::kPack2);
  std::uint64_t off_bytes = 0, off_raw = 0, packed_bytes = 0, packed_raw = 0;
  for (const auto& work : off.ranks) {
    off_bytes += work.pull_bytes();
    off_raw += work.raw_pull_bytes();
  }
  for (const auto& work : packed.ranks) {
    packed_bytes += work.pull_bytes();
    packed_raw += work.raw_pull_bytes();
  }
  EXPECT_EQ(off_bytes, off_raw);       // off is the raw baseline
  EXPECT_EQ(packed_raw, off_raw);      // raw bytes invariant across modes
  EXPECT_LT(3 * packed_bytes, off_bytes);  // 2-bit packing is ~4x
}

// ---------- performance models ----------

TEST(PerfModel, TwoLevelAggregationConservesBytesAndCutsInterNode) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());

  SimOptions flat_options = default_options();
  const SimResult flat = simulate_bsp(machine, assignment, flat_options);

  SimOptions hier_options = flat_options;
  hier_options.proto.ranks_per_node = machine.cores_per_node;
  const SimResult hier = simulate_bsp(machine, assignment, hier_options);

  // Aggregation moves bytes from the NIC to the intra-node forward
  // collective; the totals are conserved and the raw baseline untouched.
  EXPECT_EQ(hier.exchange_bytes, flat.exchange_bytes);
  EXPECT_EQ(hier.wire_raw_bytes, flat.wire_raw_bytes);
  EXPECT_LT(hier.inter_node_bytes, flat.inter_node_bytes);
}

TEST(PerfModel, TimelineAccountingIsConsistent) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  for (const bool async_mode : {false, true}) {
    const SimResult result = async_mode
                                 ? simulate_async(machine, assignment, default_options())
                                 : simulate_bsp(machine, assignment, default_options());
    ASSERT_EQ(result.ranks.size(), machine.total_ranks());
    EXPECT_GT(result.runtime, 0.0);
    for (const auto& timeline : result.ranks) {
      EXPECT_GE(timeline.compute, 0.0);
      EXPECT_GE(timeline.overhead, 0.0);
      EXPECT_GE(timeline.comm, 0.0);
      EXPECT_GE(timeline.sync, -1e-12);
      // Every rank's total is (close to) the phase duration: whoever ends
      // early waits in sync.
      EXPECT_NEAR(timeline.total(), result.runtime, result.runtime * 0.05 + 1e-9);
      EXPECT_GT(timeline.peak_memory, 0u);
    }
  }
}

TEST(PerfModel, Deterministic) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(4);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  const SimResult a = simulate_bsp(machine, assignment, default_options());
  const SimResult b = simulate_bsp(machine, assignment, default_options());
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(PerfModel, StrongScalingReducesRuntime) {
  const auto workload = small_workload();
  double prev_bsp = 1e100, prev_async = 1e100;
  for (const std::size_t nodes : {1, 2, 4}) {
    const MachineParams machine = cori_knl(nodes);
    const SimAssignment assignment = assign(workload, machine.total_ranks());
    const double bsp = simulate_bsp(machine, assignment, default_options()).runtime;
    const double async = simulate_async(machine, assignment, default_options()).runtime;
    EXPECT_LT(bsp, prev_bsp);
    EXPECT_LT(async, prev_async);
    prev_bsp = bsp;
    prev_async = async;
  }
}

TEST(PerfModel, SkipComputeZeroesComputeTime) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions options = default_options();
  options.skip_compute = true;
  for (const bool async_mode : {false, true}) {
    const SimResult result = async_mode ? simulate_async(machine, assignment, options)
                                        : simulate_bsp(machine, assignment, options);
    for (const auto& timeline : result.ranks) EXPECT_DOUBLE_EQ(timeline.compute, 0.0);
  }
}

TEST(PerfModel, RoundsGrowAsBudgetShrinks) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions options = default_options();
  std::uint64_t prev_rounds = 0;
  for (const std::uint64_t budget : {1ull << 30, 1ull << 22, 1ull << 19, 1ull << 17}) {
    options.proto.bsp_round_budget = budget;
    const SimResult result = simulate_bsp(machine, assignment, options);
    EXPECT_GE(result.rounds, prev_rounds);
    prev_rounds = result.rounds;
  }
  EXPECT_GT(prev_rounds, 1u);
}

TEST(PerfModel, MultiRoundCostsMoreCommThanSingleRound) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions generous = default_options();
  generous.proto.bsp_round_budget = 1ull << 30;
  SimOptions tight = default_options();
  tight.proto.bsp_round_budget = 1ull << 17;
  const auto single = reduce(simulate_bsp(machine, assignment, generous));
  const auto multi = reduce(simulate_bsp(machine, assignment, tight));
  EXPECT_GT(multi.comm_avg, single.comm_avg);
}

TEST(PerfModel, SingleRoundCapacityIsSufficient) {
  const auto workload = small_workload();
  const MachineParams base = cori_knl(2);
  const SimAssignment assignment = assign(workload, base.total_ranks());
  MachineParams machine = base;
  machine.memory_per_core = single_round_capacity(assignment) + 1;
  SimOptions options = default_options();
  options.proto.bsp_round_budget = 0;  // derive from memory
  const SimResult result = simulate_bsp(machine, assignment, options);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(PerfModel, BelowCapacityForcesMultipleRounds) {
  const auto workload = small_workload();
  const MachineParams base = cori_knl(2);
  const SimAssignment assignment = assign(workload, base.total_ranks());
  MachineParams machine = base;
  machine.memory_per_core = single_round_capacity(assignment) / 3;
  SimOptions options = default_options();
  options.proto.bsp_round_budget = 0;
  const SimResult result = simulate_bsp(machine, assignment, options);
  EXPECT_GT(result.rounds, 1u);
}

TEST(PerfModel, AsyncMemoryBelowBspMemory) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  const auto bsp = reduce(simulate_bsp(machine, assignment, default_options()));
  const auto async = reduce(simulate_async(machine, assignment, default_options()));
  EXPECT_LT(async.peak_memory_max, bsp.peak_memory_max);
}

TEST(PerfModel, AsyncWindowGrowsMemory) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions narrow = default_options();
  narrow.proto.async_window = 2;
  SimOptions wide = default_options();
  wide.proto.async_window = 512;
  const auto small_mem = reduce(simulate_async(machine, assignment, narrow));
  const auto big_mem = reduce(simulate_async(machine, assignment, wide));
  EXPECT_LT(small_mem.peak_memory_max, big_mem.peak_memory_max);
}

TEST(PerfModel, EstimatedExchangeMemoryShrinksWithRanks) {
  const auto workload = small_workload();
  const std::uint64_t at_64 = estimated_exchange_memory(assign(workload, 64));
  const std::uint64_t at_256 = estimated_exchange_memory(assign(workload, 256));
  EXPECT_GT(at_64, at_256);
}

TEST(PerfModel, HigherLatencyHurtsAsync) {
  const auto workload = small_workload();
  const MachineParams base = cori_knl(4);
  const SimAssignment assignment = assign(workload, base.total_ranks());
  SimOptions options = default_options();
  options.skip_compute = true;  // nothing to hide behind: latency is visible
  MachineParams slow = base;
  slow.internode_latency = 5e-4;
  const auto fast_net = reduce(simulate_async(base, assignment, options));
  const auto slow_net = reduce(simulate_async(slow, assignment, options));
  EXPECT_GT(slow_net.runtime, fast_net.runtime);
}

TEST(PerfModel, OsNoiseIncreasesSync) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(1);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions quiet = default_options();
  quiet.os_noise = 0.0;
  SimOptions noisy = default_options();
  // Large noise so the jitter dominates the workload's own imbalance
  // (small noise can deterministically land on the already-loaded ranks
  // and slightly *shrink* the spread).
  noisy.os_noise = 0.5;
  const auto q = reduce(simulate_bsp(machine, assignment, quiet));
  const auto n = reduce(simulate_bsp(machine, assignment, noisy));
  EXPECT_GT(n.sync_avg, q.sync_avg);
}

TEST(PerfModel, CostBalancedReducesImbalance) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment by_count =
      assign(workload, machine.total_ranks(), BalancePolicy::kCountBalanced);
  const SimAssignment by_cost =
      assign(workload, machine.total_ranks(), BalancePolicy::kCostBalanced);
  SimOptions options = default_options();
  options.os_noise = 0;
  const auto count_run = reduce(simulate_bsp(machine, by_count, options));
  const auto cost_run = reduce(simulate_bsp(machine, by_cost, options));
  EXPECT_LT(cost_run.load_imbalance, count_run.load_imbalance);
  EXPECT_LT(cost_run.sync_avg, count_run.sync_avg);
}

TEST(PerfModel, CostBalancedKeepsConservation) {
  const auto workload = small_workload();
  const SimAssignment assignment = assign(workload, 16, BalancePolicy::kCostBalanced);
  std::uint64_t cells = 0;
  for (const auto& work : assignment.ranks) cells += work.total_cells();
  EXPECT_EQ(cells, workload.total_cells());
}

TEST(PerfModel, RdmaDropsCalleeServiceCost) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions rpc = default_options();
  SimOptions rdma = default_options();
  rdma.async_rdma = true;
  const auto rpc_run = reduce(simulate_async(machine, assignment, rpc));
  const auto rdma_run = reduce(simulate_async(machine, assignment, rdma));
  EXPECT_LT(rdma_run.overhead_avg, rpc_run.overhead_avg);
}

TEST(PerfModel, RdmaPaysDoubleLatencyWhenExposed) {
  const auto workload = small_workload();
  MachineParams machine = cori_knl(4);
  machine.internode_latency = 2e-4;  // high-latency network exposes RTTs
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions rpc = default_options();
  rpc.skip_compute = true;
  rpc.proto.async_window = 1;  // serialize round trips
  SimOptions rdma = rpc;
  rdma.async_rdma = true;
  const auto rpc_run = reduce(simulate_async(machine, assignment, rpc));
  const auto rdma_run = reduce(simulate_async(machine, assignment, rdma));
  EXPECT_GT(rdma_run.comm_avg, rpc_run.comm_avg);
}

TEST(PerfModel, BatchingReducesPerMessageCosts) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(4);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions single = default_options();
  single.skip_compute = true;
  SimOptions batched = single;
  batched.proto.async_batch = 32;
  const auto one = reduce(simulate_async(machine, assignment, single));
  const auto many = reduce(simulate_async(machine, assignment, batched));
  EXPECT_LE(many.comm_avg, one.comm_avg);
  EXPECT_LE(many.overhead_avg, one.overhead_avg);
}

TEST(PerfModel, RankMismatchAborts) {
  const auto workload = small_workload();
  const SimAssignment assignment = assign(workload, 3);  // != machine ranks
  EXPECT_DEATH((void)simulate_bsp(cori_knl(2), assignment, default_options()), "");
}

TEST(Report, ReduceAggregatesCorrectly) {
  SimResult result;
  result.runtime = 10;
  result.rounds = 2;
  stat::Breakdown t1;
  t1.compute = 4;
  t1.peak_memory = 100;
  stat::Breakdown t2;
  t2.compute = 8;
  t2.peak_memory = 300;
  result.ranks = {t1, t2};
  const stat::Summary b = reduce(result);
  EXPECT_DOUBLE_EQ(b.compute_avg, 6.0);
  EXPECT_DOUBLE_EQ(b.compute_min, 4.0);
  EXPECT_DOUBLE_EQ(b.compute_max, 8.0);
  EXPECT_DOUBLE_EQ(b.load_imbalance, 8.0 / 6.0);
  EXPECT_EQ(b.peak_memory_max, 300u);
  EXPECT_EQ(b.rounds, 2u);
}

TEST(Report, ExchangeLoadMinMax) {
  const auto workload = small_workload();
  const SimAssignment assignment = assign(workload, 32);
  const ExchangeLoad load = exchange_load(assignment);
  EXPECT_LE(load.min_bytes, load.max_bytes);
  std::uint64_t total = 0;
  for (const auto& work : assignment.ranks) total += work.pull_bytes();
  EXPECT_EQ(load.total_bytes, total);
}

// ---------- compute_threads in the cost model ----------

TEST(PerfModel, ComputeThreadsOneIsByteIdentical) {
  // The T=1 path must be the exact serial model: every divisor is exactly
  // 1.0 and no pooled branch is taken, so the doubles are bit-equal.
  unsetenv("GNB_COMPUTE_THREADS");  // compare the true default against T=1
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  const SimOptions base = default_options();
  SimOptions explicit_one = base;
  explicit_one.proto.compute_threads = 1;
  for (const bool async_mode : {false, true}) {
    const SimResult a = async_mode ? simulate_async(machine, assignment, base)
                                   : simulate_bsp(machine, assignment, base);
    const SimResult b = async_mode ? simulate_async(machine, assignment, explicit_one)
                                   : simulate_bsp(machine, assignment, explicit_one);
    EXPECT_EQ(a.runtime, b.runtime);
    ASSERT_EQ(a.ranks.size(), b.ranks.size());
    for (std::size_t r = 0; r < a.ranks.size(); ++r) {
      EXPECT_EQ(a.ranks[r].compute, b.ranks[r].compute);
      EXPECT_EQ(a.ranks[r].overhead, b.ranks[r].overhead);
      EXPECT_EQ(a.ranks[r].comm, b.ranks[r].comm);
      EXPECT_EQ(a.ranks[r].sync, b.ranks[r].sync);
      EXPECT_EQ(b.ranks[r].compute_layer.threads, 1u);
    }
  }
}

TEST(PerfModel, MoreComputeThreadsNeverSlower) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions serial = default_options();
  serial.proto.compute_threads = 1;  // pin: GNB_COMPUTE_THREADS may be set
  SimOptions pooled = default_options();
  pooled.proto.compute_threads = 4;
  for (const bool async_mode : {false, true}) {
    const SimResult one = async_mode ? simulate_async(machine, assignment, serial)
                                     : simulate_bsp(machine, assignment, serial);
    const SimResult four = async_mode ? simulate_async(machine, assignment, pooled)
                                      : simulate_bsp(machine, assignment, pooled);
    EXPECT_LE(four.runtime, one.runtime);
    // Kernel seconds scale with the workers; compare per-rank compute.
    for (std::size_t r = 0; r < one.ranks.size(); ++r) {
      EXPECT_NEAR(four.ranks[r].compute, one.ranks[r].compute / 4.0,
                  1e-9 * one.ranks[r].compute + 1e-12);
      EXPECT_EQ(four.ranks[r].compute_layer.threads, 4u);
    }
  }
}

TEST(PerfModel, SkipComputeIgnoresComputeThreads) {
  const auto workload = small_workload();
  const MachineParams machine = cori_knl(2);
  const SimAssignment assignment = assign(workload, machine.total_ranks());
  SimOptions serial = default_options();
  serial.skip_compute = true;
  SimOptions pooled = serial;
  pooled.proto.compute_threads = 8;
  // No kernels to scale or overlap: the comm-only phase is unchanged.
  EXPECT_EQ(simulate_bsp(machine, assignment, serial).runtime,
            simulate_bsp(machine, assignment, pooled).runtime);
  EXPECT_EQ(simulate_async(machine, assignment, serial).runtime,
            simulate_async(machine, assignment, pooled).runtime);
}
