// Chaos suite for the seeded fault-injection layer (rt/fault) and the
// engine hardening it exercises: under delayed, duplicated, and reordered
// delivery plus stragglers, both engines must terminate and produce an
// alignment set byte-identical to the fault-free run — the fault layer may
// change *when* things happen, never *what* is computed. Every schedule is
// replayable from a single uint64 seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/fault.hpp"
#include "rt/world.hpp"
#include "stat/breakdown.hpp"
#include "util/error.hpp"
#include "util/wire.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

/// One synthesized workload, partitioned for a given rank count.
struct Workload {
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
};

// ThreadSanitizer slows the alignment compute inside each chaos run by well
// over an order of magnitude; shrink the genome there so the whole matrix
// stays runnable in CI. Native builds keep the full-size workload.
#if defined(__SANITIZE_THREAD__)
#define GNB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GNB_TSAN_BUILD 1
#endif
#endif

Workload make_workload(std::size_t ranks, std::uint64_t seed = 33) {
  Workload w;
  wl::DatasetSpec spec = wl::ecoli30x_spec();
#ifdef GNB_TSAN_BUILD
  spec.genome.length = 2'000;
#else
  spec.genome.length = 10'000;  // small enough for a seeds x ranks matrix
#endif
  w.dataset = wl::synthesize(spec, seed);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  w.tasks = pipeline::run_serial(w.dataset.reads, config, ranks);
  return w;
}

struct RunOutcome {
  std::vector<align::AlignmentRecord> records;  // sorted, all ranks merged
  std::uint64_t exchange_bytes = 0;
  stat::FaultCounters faults;  // summed over ranks
};

/// Run one engine over the workload, optionally under a fault plan, and
/// collapse the per-rank results into a comparable outcome.
RunOutcome run_engine(bool async_mode, std::size_t ranks, const Workload& w,
                      const core::EngineConfig& config, const rt::FaultPlan& plan = {}) {
  rt::World world(ranks);
  if (plan.enabled()) world.set_faults(plan);
  std::vector<core::EngineResult> results(ranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                       w.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                     w.tasks.per_rank[rank.id()], config);
  });
  RunOutcome outcome;
  for (const auto& result : results) {
    outcome.exchange_bytes += result.exchange_bytes_received;
    outcome.records.insert(outcome.records.end(), result.accepted.begin(),
                           result.accepted.end());
  }
  for (const stat::Breakdown& b : world.breakdowns()) outcome.faults.merge(b.faults);
  std::sort(outcome.records.begin(), outcome.records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score) <
                     std::tie(y.read_a, y.read_b, y.alignment.score);
            });
  return outcome;
}

/// Full-field equality: chaos must not perturb a single alignment value.
/// `compare_exchange` is off for crash-bearing plans — re-executed work
/// runs locally on the adopter, so wire traffic legitimately shrinks.
void expect_identical(const RunOutcome& chaos, const RunOutcome& clean,
                      bool compare_exchange = true) {
  if (compare_exchange) EXPECT_EQ(chaos.exchange_bytes, clean.exchange_bytes);
  ASSERT_EQ(chaos.records.size(), clean.records.size());
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    const align::AlignmentRecord& a = chaos.records[i];
    const align::AlignmentRecord& b = clean.records[i];
    ASSERT_EQ(a.read_a, b.read_a) << "record " << i;
    ASSERT_EQ(a.read_b, b.read_b) << "record " << i;
    EXPECT_EQ(a.alignment.score, b.alignment.score) << "record " << i;
    EXPECT_EQ(a.alignment.a_begin, b.alignment.a_begin) << "record " << i;
    EXPECT_EQ(a.alignment.a_end, b.alignment.a_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_begin, b.alignment.b_begin) << "record " << i;
    EXPECT_EQ(a.alignment.b_end, b.alignment.b_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_reversed, b.alignment.b_reversed) << "record " << i;
    EXPECT_EQ(a.alignment.cells, b.alignment.cells) << "record " << i;
  }
}

}  // namespace

// --- plan parsing and seeding ---

TEST(FaultPlan, DefaultDisabled) {
  const rt::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, FromSeedIsDeterministicAndEnabled) {
  const rt::FaultPlan a = rt::FaultPlan::from_seed(42);
  const rt::FaultPlan b = rt::FaultPlan::from_seed(42);
  EXPECT_TRUE(a.enabled());
  EXPECT_EQ(a.to_spec(), b.to_spec());
  // Different seeds explore different intensities (jittered mix).
  const rt::FaultPlan c = rt::FaultPlan::from_seed(43);
  EXPECT_NE(a.to_spec(), c.to_spec());
}

TEST(FaultPlan, ParseBareSeedMatchesFromSeed) {
  EXPECT_EQ(rt::FaultPlan::parse("42").to_spec(), rt::FaultPlan::from_seed(42).to_spec());
}

TEST(FaultPlan, ParseKeyValueRoundTrips) {
  const std::string spec = "seed=7,delay=0.25:8,dup=0.05,reorder=0.1,straggle=0.02:500";
  const rt::FaultPlan plan = rt::FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.delay_prob, 0.25);
  EXPECT_EQ(plan.max_delay_ticks, 8u);
  EXPECT_DOUBLE_EQ(plan.dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.reorder_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.straggle_prob, 0.02);
  EXPECT_EQ(plan.max_straggle_us, 500u);
  // to_spec() renders a spec that parses back to the same plan.
  EXPECT_EQ(rt::FaultPlan::parse(plan.to_spec()).to_spec(), plan.to_spec());
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  const auto parse = [](const std::string& spec) { (void)rt::FaultPlan::parse(spec); };
  EXPECT_THROW(parse(""), gnb::Error);
  EXPECT_THROW(parse("delay=nope"), gnb::Error);
  EXPECT_THROW(parse("unknown=1"), gnb::Error);
  EXPECT_THROW(parse("delay=0.5:x"), gnb::Error);  // bad magnitude
  EXPECT_THROW(parse("dup=1.5"), gnb::Error);      // out of [0,1]
  // A bare probability takes the documented default magnitude.
  EXPECT_EQ(rt::FaultPlan::parse("delay=0.5").max_delay_ticks, 8u);
}

TEST(FaultPlan, ParseCrashEventsRoundTrip) {
  const rt::FaultPlan plan = rt::FaultPlan::parse("seed=9,crash@1:3,crash@4:0");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].rank, 1u);
  EXPECT_EQ(plan.crashes[0].at_step, 3u);
  EXPECT_EQ(plan.crashes[1].rank, 4u);
  EXPECT_EQ(plan.crashes[1].at_step, 0u);
  EXPECT_TRUE(plan.enabled());  // a crash-only plan is an enabled plan
  EXPECT_EQ(rt::FaultPlan::parse(plan.to_spec()).to_spec(), plan.to_spec());
}

TEST(FaultPlan, ParseRejectsMalformedCrashSpecs) {
  const auto parse = [](const std::string& spec) { (void)rt::FaultPlan::parse(spec); };
  EXPECT_THROW(parse("crash@"), gnb::Error);         // no rank:step
  EXPECT_THROW(parse("crash@1"), gnb::Error);        // no step
  EXPECT_THROW(parse("crash@:3"), gnb::Error);       // no rank
  EXPECT_THROW(parse("crash@x:3"), gnb::Error);      // non-numeric rank
  EXPECT_THROW(parse("crash@1:y"), gnb::Error);      // non-numeric step
  EXPECT_THROW(parse("crash=1:2"), gnb::Error);      // wrong separator
  EXPECT_THROW(parse("crash@1:2,crash@1:5"), gnb::Error);  // duplicate rank
}

TEST(FaultPlan, ParsePartitionRestartCorruptRoundTrip) {
  const rt::FaultPlan plan =
      rt::FaultPlan::parse("seed=9,partition@0|2:100:500,restart@1:2,corrupt@3:2:1");
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].a, 0u);
  EXPECT_EQ(plan.partitions[0].b, 2u);
  EXPECT_EQ(plan.partitions[0].at_tick, 100u);
  EXPECT_EQ(plan.partitions[0].duration, 500u);
  ASSERT_EQ(plan.restarts.size(), 1u);
  EXPECT_EQ(plan.restarts[0].rank, 1u);
  EXPECT_EQ(plan.restarts[0].skip_gates, 2u);
  ASSERT_EQ(plan.corrupts.size(), 1u);
  EXPECT_EQ(plan.corrupts[0].rank, 3u);
  EXPECT_EQ(plan.corrupts[0].kind, 2u);
  EXPECT_EQ(plan.corrupts[0].seq, 1u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(rt::FaultPlan::parse(plan.to_spec()).to_spec(), plan.to_spec());
}

TEST(FaultPlan, PartitionDurationDefaultsWhenOmitted) {
  const rt::FaultPlan plan = rt::FaultPlan::parse("partition@1|3:64");
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].duration, rt::FaultPlan::kDefaultPartitionTicks);
  EXPECT_EQ(rt::FaultPlan::parse(plan.to_spec()).to_spec(), plan.to_spec());
}

TEST(FaultPlan, RoundTripFuzzAcrossAllEventKinds) {
  // Deterministic sweep over programmatically built plans mixing every
  // event kind: parse(to_spec()) must reproduce the spec byte for byte.
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    rt::FaultPlan plan;
    plan.seed = trial * 7919 + 1;
    if (trial % 2) {
      plan.delay_prob = 0.125 * static_cast<double>(trial % 8);
      plan.max_delay_ticks = trial % 16 + 1;
    }
    if (trial % 5 == 0) plan.dup_prob = 0.25;
    if (trial % 3) plan.crashes.push_back(
        {static_cast<std::uint32_t>(trial % 5), trial % 11});
    if (trial % 3 == 0)
      plan.partitions.push_back({static_cast<std::uint32_t>(trial % 4),
                                 static_cast<std::uint32_t>(trial % 4 + 1),
                                 trial * 13 % 997, trial % 7 + 1});
    if (trial % 4 != 1)
      plan.restarts.push_back({static_cast<std::uint32_t>(trial % 6), trial % 4});
    plan.corrupts.push_back({static_cast<std::uint32_t>(trial % 3),
                             static_cast<std::uint32_t>(trial % 2 + 1), trial % 9});
    const std::string spec = plan.to_spec();
    SCOPED_TRACE(spec);
    const rt::FaultPlan reparsed = rt::FaultPlan::parse(spec);
    EXPECT_EQ(reparsed.to_spec(), spec);
  }
}

TEST(FaultPlan, MalformedSelfHealingSpecsRejectedWithPosition) {
  // Every rejection names the offending position in the spec string.
  const auto error_text = [](const std::string& spec) -> std::string {
    try {
      (void)rt::FaultPlan::parse(spec);
    } catch (const gnb::Error& e) {
      return e.what();
    }
    ADD_FAILURE() << "spec '" << spec << "' unexpectedly parsed";
    return {};
  };
  for (const char* spec :
       {"partition@", "partition@0:100", "partition@0|0:5", "partition@0|1:5:0",
        "partition@x|1:5", "partition@0|1:y", "restart@", "restart@1",
        "restart@1:z", "corrupt@1", "corrupt@1:2", "corrupt@1:0:0",
        "corrupt@a:1:0", "seed=1,partition@0|1"}) {
    SCOPED_TRACE(spec);
    EXPECT_NE(error_text(spec).find("at position"), std::string::npos);
  }
}

TEST(FaultPlan, CrashNamingOutOfRangeRankIsRejectedAtInstall) {
  rt::World world(2);
  EXPECT_THROW(world.set_faults(rt::FaultPlan::parse("crash@2:0")), gnb::Error);
  EXPECT_THROW(world.set_faults(rt::FaultPlan::parse("crash@7:1")), gnb::Error);
  world.set_faults(rt::FaultPlan::parse("crash@1:0"));  // in range: fine
  EXPECT_NE(world.faults(), nullptr);
}

TEST(FaultInjector, CrashStepIsEarliestEventForTheRank) {
  rt::FaultPlan plan;
  plan.crashes = {{3, 9}};
  const rt::FaultInjector injector(plan);
  EXPECT_FALSE(injector.crash_step(0).has_value());
  ASSERT_TRUE(injector.crash_step(3).has_value());
  EXPECT_EQ(*injector.crash_step(3), 9u);
  EXPECT_FALSE(injector.crashes_at(3, 8));
  EXPECT_TRUE(injector.crashes_at(3, 9));
  // A rank cannot outrun its death by skipping event kinds.
  EXPECT_TRUE(injector.crashes_at(3, 100));
}

// --- injector determinism ---

TEST(FaultInjector, ScheduleIsAPureFunctionOfSeedAndIdentity) {
  const rt::FaultPlan plan = rt::FaultPlan::from_seed(99);
  const rt::FaultInjector a(plan);
  const rt::FaultInjector b(plan);
  for (std::uint32_t src = 0; src < 4; ++src)
    for (std::uint32_t dst = 0; dst < 4; ++dst)
      for (std::uint64_t seq = 0; seq < 64; ++seq) {
        const auto da = a.on_request(src, dst, seq);
        const auto db = b.on_request(src, dst, seq);
        EXPECT_EQ(da.delay_ticks, db.delay_ticks);
        EXPECT_EQ(da.duplicate, db.duplicate);
        const auto ra = a.on_reply(src, dst, seq);
        const auto rb = b.on_reply(src, dst, seq);
        EXPECT_EQ(ra.delay_ticks, rb.delay_ticks);
        EXPECT_EQ(ra.duplicate, rb.duplicate);
        EXPECT_EQ(a.reorder_replies(src, seq), b.reorder_replies(src, seq));
        EXPECT_EQ(a.straggle_us(src, seq), b.straggle_us(src, seq));
      }
}

TEST(FaultInjector, IntensitiesGateTheDecisions) {
  rt::FaultPlan always;
  always.seed = 5;
  always.delay_prob = 1.0;
  always.max_delay_ticks = 6;
  always.dup_prob = 1.0;
  const rt::FaultInjector on(always);
  rt::FaultPlan never;
  never.seed = 5;
  never.dup_prob = 1.0;  // enabled, but no delay/straggle
  const rt::FaultInjector off(never);
  for (std::uint64_t seq = 0; seq < 128; ++seq) {
    const auto d = on.on_request(0, 1, seq);
    EXPECT_GE(d.delay_ticks, 1u);
    EXPECT_LE(d.delay_ticks, 6u);
    EXPECT_TRUE(d.duplicate);
    EXPECT_EQ(off.on_request(0, 1, seq).delay_ticks, 0u);
    EXPECT_EQ(off.straggle_us(0, seq), 0u);
  }
}

// --- wire checksums (the BSP per-round verification primitive) ---

TEST(WireChecksum, SealAndVerifyRoundTrip) {
  std::vector<std::uint8_t> buffer;
  wire::begin_checksum(buffer);
  for (std::uint8_t i = 0; i < 200; ++i) buffer.push_back(i);
  wire::seal_checksum(buffer);
  std::size_t offset = 0;
  ASSERT_TRUE(wire::verify_checksum(buffer, offset));
  EXPECT_EQ(offset, wire::kChecksumBytes);
}

TEST(WireChecksum, DetectsCorruptionAndTruncation) {
  std::vector<std::uint8_t> buffer;
  wire::begin_checksum(buffer);
  for (std::uint8_t i = 0; i < 64; ++i) buffer.push_back(i);
  wire::seal_checksum(buffer);

  auto flipped = buffer;
  flipped[wire::kChecksumBytes + 10] ^= 0x40;  // payload bit flip
  std::size_t offset = 0;
  EXPECT_FALSE(wire::verify_checksum(flipped, offset));
  EXPECT_EQ(offset, 0u);  // offset untouched on failure

  auto truncated = buffer;
  truncated.pop_back();
  offset = 0;
  EXPECT_FALSE(wire::verify_checksum(truncated, offset));

  auto header_hit = buffer;
  header_hit[0] ^= 0x01;  // checksum header itself corrupted
  offset = 0;
  EXPECT_FALSE(wire::verify_checksum(header_hit, offset));
}

TEST(WireChecksum, EmptyPayloadVerifies) {
  std::vector<std::uint8_t> buffer;
  wire::begin_checksum(buffer);
  wire::seal_checksum(buffer);
  std::size_t offset = 0;
  EXPECT_TRUE(wire::verify_checksum(buffer, offset));
  EXPECT_EQ(offset, buffer.size());
}

// --- counters plumbing ---

TEST(FaultCounters, MergeAndAny) {
  stat::FaultCounters a;
  EXPECT_FALSE(a.any());
  stat::FaultCounters b;
  b.retries = 2;
  b.duplicates = 1;
  a.merge(b);
  a.merge(b);
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.duplicates, 2u);
  EXPECT_EQ(a.timeouts, 0u);
}

// --- the chaos matrix: fault seeds x rank counts x engines ---

TEST(Chaos, ResultsAreByteIdenticalUnderInjection) {
  const core::EngineConfig config;  // full compute: compare real alignments
  for (const std::size_t ranks : {2ul, 4ul}) {
    const Workload w = make_workload(ranks);
    for (const bool async_mode : {false, true}) {
      const RunOutcome clean = run_engine(async_mode, ranks, w, config);
      ASSERT_FALSE(clean.records.empty());
      for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
        const rt::FaultPlan plan = rt::FaultPlan::from_seed(seed);
        const RunOutcome chaos = run_engine(async_mode, ranks, w, config, plan);
        SCOPED_TRACE((async_mode ? "async" : "bsp") + std::string(" ranks=") +
                     std::to_string(ranks) + " seed=" + std::to_string(seed));
        expect_identical(chaos, clean);
      }
    }
  }
}

TEST(Chaos, ComputeThreadsStayByteIdenticalUnderInjection) {
  // The worker pool must not perturb results even when the fault layer is
  // scrambling delivery: at every thread count the accepted set equals the
  // serial fault-free run, and the fault layer stays active (the exact
  // observation counts — where a duplicate gets dropped, say — are timing-
  // dependent and legitimately move with the thread count).
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const rt::FaultPlan plan = rt::FaultPlan::from_seed(7);
  for (const bool async_mode : {false, true}) {
    core::EngineConfig serial;
    serial.proto.compute_threads = 1;
    const RunOutcome clean = run_engine(async_mode, kRanks, w, serial);
    ASSERT_FALSE(clean.records.empty());
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      core::EngineConfig pooled;
      pooled.proto.compute_threads = threads;
      SCOPED_TRACE((async_mode ? "async" : "bsp") + std::string(" threads=") +
                   std::to_string(threads));
      const RunOutcome chaos = run_engine(async_mode, kRanks, w, pooled, plan);
      expect_identical(chaos, clean);
      // BSP has no RPCs for the injector to duplicate or time out; only the
      // async engine is expected to observe fault events in its counters.
      if (async_mode) EXPECT_TRUE(chaos.faults.any());
    }
  }
}

TEST(Chaos, HeavyDuplicationIsDeduplicated) {
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  rt::FaultPlan plan;
  plan.seed = 11;
  plan.dup_prob = 1.0;  // every delivery duplicated
  const RunOutcome clean = run_engine(true, kRanks, w, config);
  const RunOutcome chaos = run_engine(true, kRanks, w, config, plan);
  expect_identical(chaos, clean);
  // Every duplicate was observed and dropped somewhere (caller-side drop,
  // callee-side cache, or rt-level orphan) — the counter must show it.
  EXPECT_GT(chaos.faults.duplicates, 0u);
}

TEST(Chaos, TinyTimeoutForcesRetriesWithoutChangingResults) {
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  core::EngineConfig config;
  config.proto.rpc_timeout = 1;  // re-issue on the first timeout scan
  config.proto.max_retries = 3;
  rt::FaultPlan plan;
  plan.seed = 3;
  plan.delay_prob = 0.8;  // hold replies long enough to look lost
  plan.max_delay_ticks = 4096;
  plan.dup_prob = 0.1;
  const core::EngineConfig clean_config;  // default: generous timeout
  const RunOutcome clean = run_engine(true, kRanks, w, clean_config);
  const RunOutcome chaos = run_engine(true, kRanks, w, config, plan);
  expect_identical(chaos, clean);
  EXPECT_GT(chaos.faults.retries, 0u);
  EXPECT_GT(chaos.faults.timeouts, 0u);
}

TEST(Chaos, StragglersDoNotDeadlockCollectives) {
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  rt::FaultPlan plan;
  plan.seed = 21;
  plan.straggle_prob = 0.75;
  plan.max_straggle_us = 300;
  for (const bool async_mode : {false, true}) {
    const RunOutcome clean = run_engine(async_mode, kRanks, w, config);
    const RunOutcome chaos = run_engine(async_mode, kRanks, w, config, plan);
    SCOPED_TRACE(async_mode ? "async" : "bsp");
    expect_identical(chaos, clean);
  }
}

// --- the failure detector: partitions are suspected, then forgiven ---

TEST(Detector, PartitionedPeerIsSuspectedThenCleared) {
  // Cut the 0<->1 link for a window much longer than the lease: each side
  // suspects the other (silence > lease), quarantines it, and clears the
  // suspicion as a false one when the link heals — all without perturbing
  // a single output byte. Only the async engine drives RPC progress (and
  // with it the detector); BSP collectives ride the mail slots.
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const RunOutcome clean = run_engine(true, kRanks, w, config);
  ASSERT_FALSE(clean.records.empty());

  rt::FaultPlan plan;
  plan.seed = 61;
  plan.partitions.push_back({0, 1, 50, 600});
  rt::World world(kRanks);
  world.set_faults(plan);
  world.set_detector_lease(64);  // suspect quickly inside the window
  std::vector<core::EngineResult> results(kRanks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] = core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                           w.tasks.per_rank[rank.id()], config);
  });
  RunOutcome chaos;
  for (const auto& result : results) {
    chaos.exchange_bytes += result.exchange_bytes_received;
    chaos.records.insert(chaos.records.end(), result.accepted.begin(),
                         result.accepted.end());
  }
  for (const stat::Breakdown& b : world.breakdowns()) chaos.faults.merge(b.faults);
  std::sort(chaos.records.begin(), chaos.records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score) <
                     std::tie(y.read_a, y.read_b, y.alignment.score);
            });
  expect_identical(chaos, clean);
  EXPECT_GE(chaos.faults.suspected, 1u);
  EXPECT_GE(chaos.faults.false_suspicions, 1u);
}

TEST(Chaos, PartitionWindowHealsWithoutChangingResults) {
  // Default lease: the partition stalls traffic (async) or nothing at all
  // (BSP), and either way the output is byte-identical.
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const rt::FaultPlan plan = rt::FaultPlan::parse("seed=63,partition@0|1:50:1200");
  for (const bool async_mode : {false, true}) {
    const RunOutcome clean = run_engine(async_mode, kRanks, w, config);
    const RunOutcome chaos = run_engine(async_mode, kRanks, w, config, plan);
    SCOPED_TRACE(async_mode ? "async" : "bsp");
    expect_identical(chaos, clean);
  }
}

TEST(Chaos, SelfHealingFullStackStaysByteIdentical) {
  // Crash + restart/rejoin + partition + write-time checkpoint corruption
  // in one plan: the union of every self-healing path, still byte-clean.
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const rt::FaultPlan plan = rt::FaultPlan::parse(
      "seed=77,crash@1:2,restart@1:0,partition@0|2:64:1500,corrupt@1:2:0");
  for (const bool async_mode : {false, true}) {
    const RunOutcome clean = run_engine(async_mode, kRanks, w, config);
    const RunOutcome chaos = run_engine(async_mode, kRanks, w, config, plan);
    SCOPED_TRACE(async_mode ? "async" : "bsp");
    expect_identical(chaos, clean, /*compare_exchange=*/false);
    EXPECT_GT(chaos.faults.crashes, 0u);
  }
}

TEST(Chaos, DisabledPlanInstallsNoInjector) {
  rt::World world(2);
  world.set_faults(rt::FaultPlan{});  // disabled plan clears injection
  EXPECT_EQ(world.faults(), nullptr);
  world.set_faults(rt::FaultPlan::from_seed(1));
  EXPECT_NE(world.faults(), nullptr);
  world.set_faults(rt::FaultPlan{});
  EXPECT_EQ(world.faults(), nullptr);
}
