// Wire-codec and byte-accounting tests (DESIGN.md §15).
//
// Three layers of guarantees:
//   * codec: exact round trip and exact sizing for every mode, on a fuzz
//     corpus that includes empty, all-N, all-homopolymer and ambiguous
//     reads; `auto` never exceeds the smaller concrete codec.
//   * engines: byte conservation (sum of per-rank sent == sum received),
//     wire.raw_bytes invariance across modes, and byte-identical engine
//     *output* across every codec and rank count — compression changes
//     wire bytes and nothing else.
//   * hierarchy: the two-level BSP exchange preserves output and byte
//     conservation, and executes exactly the rounds/messages/bytes that
//     proto::plan_node_exchange costs; the simulator's sent-byte
//     prediction stays within the acceptance band of the measured run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "pipeline/pipeline.hpp"
#include "proto/config.hpp"
#include "proto/exchange_plan.hpp"
#include "rt/world.hpp"
#include "seq/read_store.hpp"
#include "seq/sequence.hpp"
#include "seq/wire_codec.hpp"
#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "util/rng.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

constexpr proto::WireCompression kModes[] = {
    proto::WireCompression::kOff, proto::WireCompression::kPack2,
    proto::WireCompression::kPack2Rle, proto::WireCompression::kAuto};

seq::Read make_read(seq::ReadId id, std::string_view bases) {
  seq::Read read;
  read.id = id;
  read.sequence = seq::Sequence::from_string(bases);
  return read;
}

/// The adversarial corpus from the issue: empty, single-base, all-N,
/// all-homopolymer, runs straddling the RLE minimum, and N-interrupted
/// homopolymers (an N splits a run because it packs as A out-of-band).
std::vector<std::string> corpus() {
  std::vector<std::string> reads = {
      "",
      "A",
      "N",
      "ACGT",
      "ACGTACGTACGTACGTACGTACGTACGTACGT",
      std::string(40, 'N'),
      std::string(100, 'A'),
      std::string(1000, 'G'),
      "AAAT",   // run of exactly 3: below the RLE minimum
      "AAAAT",  // run of exactly 4: RLE escape with zero extra
      "AAAAAT", // run of 5: one extra symbol in the escape table
      "AANAA",  // N interrupts what would otherwise be a run
      "CCCCCCCCNGGGGGGGG",
      "ACGTNNNNACGTNNNN",
  };
  return reads;
}

std::vector<std::string> fuzz_corpus(std::size_t count, std::uint64_t seed) {
  static constexpr char kAlphabet[] = "ACGTN";
  Xoshiro256 rng(seed);
  std::vector<std::string> reads;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t length = rng.below(300);
    std::string bases;
    while (bases.size() < length) {
      if (rng.uniform() < 0.2) {
        // Homopolymer stretch, sometimes long enough to trigger the RLE
        // escape (>= 4) and sometimes not.
        const char base = kAlphabet[rng.below(4)];
        bases.append(std::min<std::size_t>(length - bases.size(), 1 + rng.below(12)), base);
      } else {
        bases.push_back(kAlphabet[rng.below(rng.uniform() < 0.05 ? 5 : 4)]);
      }
    }
    reads.push_back(std::move(bases));
  }
  return reads;
}

std::vector<std::string> full_corpus() {
  std::vector<std::string> reads = corpus();
  const std::vector<std::string> fuzz = fuzz_corpus(200, 0x5eed);
  reads.insert(reads.end(), fuzz.begin(), fuzz.end());
  return reads;
}

}  // namespace

TEST(WireCodec, RoundTripAndExactSizing) {
  std::uint32_t id = 0;
  for (const std::string& bases : full_corpus()) {
    const seq::Read read = make_read(id++, bases);
    for (const proto::WireCompression mode : kModes) {
      std::vector<std::uint8_t> buffer = {0xAB};  // nonzero prefix: offsets must be honest
      seq::encode_read(read, mode, buffer);
      EXPECT_EQ(buffer.size() - 1, seq::encoded_read_bytes(read, mode))
          << "mode " << proto::to_string(mode) << " bases '" << bases.substr(0, 32) << "'";
      std::size_t offset = 1;
      const seq::Read decoded = seq::decode_read(buffer, offset);
      EXPECT_EQ(offset, buffer.size());
      EXPECT_EQ(decoded.id, read.id);
      EXPECT_EQ(decoded.sequence, read.sequence)
          << "mode " << proto::to_string(mode) << " bases '" << bases.substr(0, 32) << "'";
    }
  }
}

TEST(WireCodec, MixedModeStreamDecodesWithoutContext) {
  // The codec byte is per frame: a stream holding every mode decodes in
  // order with no out-of-band knowledge (the recovery re-fetch path relies
  // on this).
  const std::vector<std::string> reads = corpus();
  std::vector<std::uint8_t> buffer;
  for (std::size_t i = 0; i < reads.size(); ++i)
    seq::encode_read(make_read(static_cast<std::uint32_t>(i), reads[i]),
                     kModes[i % std::size(kModes)], buffer);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const seq::Read decoded = seq::decode_read(buffer, offset);
    EXPECT_EQ(decoded.id, i);
    EXPECT_EQ(decoded.sequence.to_string(), reads[i]);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireCodec, AutoNeverExceedsEitherConcreteCodec) {
  std::uint32_t id = 0;
  for (const std::string& bases : full_corpus()) {
    const seq::Read read = make_read(id++, bases);
    const std::uint64_t pack2 = seq::encoded_read_bytes(read, proto::WireCompression::kPack2);
    const std::uint64_t rle = seq::encoded_read_bytes(read, proto::WireCompression::kPack2Rle);
    EXPECT_EQ(seq::encoded_read_bytes(read, proto::WireCompression::kAuto),
              std::min(pack2, rle));
  }
}

TEST(WireCodec, RawBytesIsTheOffFrame) {
  std::uint32_t id = 0;
  for (const std::string& bases : full_corpus()) {
    const seq::Read read = make_read(id++, bases);
    EXPECT_EQ(seq::raw_read_bytes(read),
              seq::encoded_read_bytes(read, proto::WireCompression::kOff));
  }
}

TEST(WireCodec, HomopolymersCollapseUnderRle) {
  const seq::Read read = make_read(7, std::string(4096, 'T'));
  const std::uint64_t off = seq::encoded_read_bytes(read, proto::WireCompression::kOff);
  const std::uint64_t pack2 = seq::encoded_read_bytes(read, proto::WireCompression::kPack2);
  const std::uint64_t rle = seq::encoded_read_bytes(read, proto::WireCompression::kPack2Rle);
  EXPECT_LT(pack2, off / 3);   // 2-bit packing alone is ~4x
  EXPECT_LT(rle, 32u);         // a single run collapses to O(1) bytes
}

TEST(WireCodec, ModeledSizesMatchEncoderOnRunFreeReads) {
  // The simulator sizes pulls analytically from lengths alone, assuming
  // N-free reads with no compressible runs (the model's documented
  // contract — random DNA compresses negligibly under RLE). On such reads
  // the model must agree with the encoder exactly, for every mode.
  Xoshiro256 rng(0xfeed);
  static constexpr char kBases[] = "ACGT";
  for (std::size_t length : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
                             std::size_t{63}, std::size_t{200}, std::size_t{4096}}) {
    std::string bases;
    while (bases.size() < length) {
      const char base = kBases[rng.below(4)];
      if (!bases.empty() && bases.back() == base) continue;  // never repeat: no runs
      bases.push_back(base);
    }
    const seq::Read read = make_read(static_cast<std::uint32_t>(length), bases);
    for (const proto::WireCompression mode : kModes) {
      EXPECT_EQ(seq::modeled_wire_read_bytes(length, mode),
                seq::encoded_read_bytes(read, mode))
          << "length " << length << " mode " << proto::to_string(mode);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine matrix: byte conservation, raw-byte invariance, output identity.
// ---------------------------------------------------------------------------

namespace {

struct Fixture {
  wl::SampledDataset dataset;
  pipeline::PipelineConfig pipeline_config;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 12'000;
    spec.reads.coverage = 8;
    fx.dataset = wl::synthesize(spec, 29);
    fx.pipeline_config.k = spec.k;
    fx.pipeline_config.lo = 2;
    fx.pipeline_config.hi = 8;
    return fx;
  }();
  return f;
}

std::vector<align::AlignmentRecord> sorted(std::vector<align::AlignmentRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score, x.alignment.a_begin) <
                     std::tie(y.read_a, y.read_b, y.alignment.score, y.alignment.a_begin);
            });
  return records;
}

struct RunTotals {
  std::vector<align::AlignmentRecord> accepted;  // globally sorted
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t raw = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
};

RunTotals run_engine(bool async_mode, std::size_t nranks, const core::EngineConfig& config,
                     const Fixture& f) {
  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, nranks);
  rt::World world(nranks);
  std::vector<core::EngineResult> results(nranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, f.dataset.reads, tasks.bounds,
                                       tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, f.dataset.reads, tasks.bounds,
                                     tasks.per_rank[rank.id()], config);
  });
  RunTotals totals;
  for (const core::EngineResult& result : results) {
    totals.accepted.insert(totals.accepted.end(), result.accepted.begin(),
                           result.accepted.end());
    totals.sent += result.exchange_bytes_sent;
    totals.received += result.exchange_bytes_received;
    totals.raw += result.wire_raw_bytes;
    totals.messages += result.messages;
    totals.rounds = std::max(totals.rounds, result.rounds);
  }
  totals.accepted = sorted(std::move(totals.accepted));
  return totals;
}

void expect_same_output(const RunTotals& x, const RunTotals& y) {
  ASSERT_EQ(x.accepted.size(), y.accepted.size());
  for (std::size_t i = 0; i < x.accepted.size(); ++i) {
    const align::AlignmentRecord& a = x.accepted[i];
    const align::AlignmentRecord& b = y.accepted[i];
    EXPECT_EQ(a.read_a, b.read_a) << "record " << i;
    EXPECT_EQ(a.read_b, b.read_b) << "record " << i;
    EXPECT_EQ(a.alignment.score, b.alignment.score) << "record " << i;
    EXPECT_EQ(a.alignment.a_begin, b.alignment.a_begin) << "record " << i;
    EXPECT_EQ(a.alignment.a_end, b.alignment.a_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_begin, b.alignment.b_begin) << "record " << i;
    EXPECT_EQ(a.alignment.b_end, b.alignment.b_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_reversed, b.alignment.b_reversed) << "record " << i;
  }
}

}  // namespace

TEST(WireBytes, ConservationAndOutputIdentityAcrossModes) {
  const Fixture& f = fixture();
  for (const bool async_mode : {false, true}) {
    for (const std::size_t nranks : {1u, 2u, 4u, 8u}) {
      std::vector<RunTotals> per_mode;
      for (const proto::WireCompression mode : kModes) {
        core::EngineConfig config;
        config.proto.wire_compression = mode;
        per_mode.push_back(run_engine(async_mode, nranks, config, f));
        const RunTotals& run = per_mode.back();
        // Byte conservation: what the world sent is what the world received.
        EXPECT_EQ(run.sent, run.received)
            << (async_mode ? "async" : "bsp") << " ranks " << nranks << " mode "
            << proto::to_string(mode);
        if (nranks > 1) EXPECT_GT(run.received, 0u);
      }
      const RunTotals& off = per_mode.front();
      for (std::size_t m = 1; m < per_mode.size(); ++m) {
        // The raw-byte counter reports the off-equivalent payload whatever
        // the codec: invariant across modes.
        EXPECT_EQ(per_mode[m].raw, off.raw)
            << (async_mode ? "async" : "bsp") << " ranks " << nranks << " mode "
            << proto::to_string(kModes[m]);
        // Compression changes wire bytes and nothing else.
        expect_same_output(per_mode[m], off);
      }
      // With the off codec the wire carries exactly the raw payload.
      EXPECT_EQ(off.received, off.raw);
      if (nranks > 1) {
        // The packed codecs genuinely shrink the exchange (~4x on random
        // DNA; >= 3x is the acceptance line).
        EXPECT_LT(3 * per_mode[2].received, off.received)
            << (async_mode ? "async" : "bsp") << " ranks " << nranks;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Two-level hierarchy: output identity, conservation, plan agreement.
// ---------------------------------------------------------------------------

TEST(WireHierarchy, TwoLevelBspMatchesFlatOutputAndConservesBytes) {
  const Fixture& f = fixture();
  constexpr std::size_t kRanks = 4;
  core::EngineConfig flat_config;
  flat_config.proto.wire_compression = proto::WireCompression::kPack2Rle;
  const RunTotals flat = run_engine(false, kRanks, flat_config, f);

  core::EngineConfig hier_config = flat_config;
  hier_config.proto.ranks_per_node = 2;
  const RunTotals hier = run_engine(false, kRanks, hier_config, f);

  expect_same_output(hier, flat);
  EXPECT_EQ(hier.sent, hier.received);
  // Every requester still receives each needed read exactly once (direct
  // for the proxy, forwarded for its node peers), so the received payload
  // and its raw equivalent match the flat exchange.
  EXPECT_EQ(hier.received, flat.received);
  EXPECT_EQ(hier.raw, flat.raw);
}

TEST(WireHierarchy, EngineExecutesThePlannedTwoLevelExchange) {
  const Fixture& f = fixture();
  constexpr std::size_t kRanks = 4;
  core::EngineConfig config;
  config.skip_compute = true;
  config.proto.wire_compression = proto::WireCompression::kPack2;
  config.proto.ranks_per_node = 2;

  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, kRanks);
  const sim::SimAssignment assignment = sim::assignment_from_tasks(
      tasks.per_rank, f.dataset.reads, tasks.bounds, config.proto.wire_compression);
  proto::NodePlanInput input;
  input.ranks_per_node = config.proto.ranks_per_node;
  input.pulls.resize(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r)
    for (const sim::Pull& pull : assignment.ranks[r].pulls)
      input.pulls[r].push_back(
          proto::PullRequest{pull.read, pull.owner, pull.bytes, pull.raw_bytes});
  const proto::NodeExchangePlan plan = proto::plan_node_exchange(input, config.proto);

  rt::World world(kRanks);
  std::vector<core::EngineResult> results(kRanks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] = core::bsp_align(rank, f.dataset.reads, tasks.bounds,
                                         tasks.per_rank[rank.id()], config);
  });
  std::uint64_t messages = 0, sent = 0, received = 0, raw = 0;
  for (const core::EngineResult& result : results) {
    EXPECT_EQ(result.rounds, plan.rounds);
    messages += result.messages;
    sent += result.exchange_bytes_sent;
    received += result.exchange_bytes_received;
    raw += result.wire_raw_bytes;
  }
  EXPECT_EQ(messages, plan.bsp_messages);
  EXPECT_EQ(sent, plan.exchange_bytes);
  EXPECT_EQ(received, plan.exchange_bytes);
  EXPECT_EQ(raw, plan.raw_bytes);
  // Aggregation moves bytes off the inter-node wire without losing any:
  // the split sums back to the conserved total.
  EXPECT_EQ(plan.inter_node_bytes + plan.intra_node_bytes, plan.exchange_bytes);
  EXPECT_LE(plan.inter_node_bytes, plan.flat_inter_node_bytes);
}

TEST(WireHierarchy, SimPredictsMeasuredSentBytes) {
  // Acceptance: the simulator's sent-byte prediction for the threaded host
  // is within 15% of the measured engine run (it is exact by construction
  // — both sides count codec frames from the same assignment).
  const Fixture& f = fixture();
  constexpr std::size_t kRanks = 4;
  core::EngineConfig config;
  config.skip_compute = true;
  config.proto.wire_compression = proto::WireCompression::kPack2Rle;

  const RunTotals measured = run_engine(false, kRanks, config, f);

  const pipeline::TaskSet tasks =
      pipeline::run_serial(f.dataset.reads, f.pipeline_config, kRanks);
  const sim::SimAssignment assignment = sim::assignment_from_tasks(
      tasks.per_rank, f.dataset.reads, tasks.bounds, config.proto.wire_compression);
  sim::SimOptions options;
  options.proto = config.proto;
  const sim::SimResult sim_result =
      sim::simulate_bsp(sim::threaded_host(kRanks), assignment, options);

  ASSERT_GT(measured.sent, 0u);
  const double rel = static_cast<double>(sim_result.exchange_bytes) /
                     static_cast<double>(measured.sent);
  EXPECT_GE(rel, 0.85);
  EXPECT_LE(rel, 1.15);
  EXPECT_EQ(sim_result.wire_raw_bytes, measured.raw);
}
