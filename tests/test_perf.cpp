// Tests for the trace-analytics layer (src/obs/analysis) and the
// perf-regression gate (src/obs/perfdiff): hand-built trace fixtures with
// known critical paths (straggler and crash/rejoin shapes), attribution
// arithmetic checked against closed-form values, PERF_report.json
// determinism, diff-gate edge cases (missing span, new span, zero
// baseline, gate-pct), and sim-vs-real fidelity bounds for both engines on
// a seeded preset.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "core/calibrate.hpp"
#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/perfdiff.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "rt/world.hpp"
#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "util/error.hpp"
#include "wl/presets.hpp"

using namespace gnb;
namespace analysis = gnb::obs::analysis;
namespace perfdiff = gnb::obs::perfdiff;

namespace {

// ---------- hand-built Chrome-trace fixtures ----------

/// Builds a trace-event JSON document event by event, in the same dialect
/// obs::Tracer::write_json emits (ts in integer microseconds here; the
/// loader multiplies by 1000).
class TraceFixture {
 public:
  void process(std::uint32_t pid, const std::string& label) {
    event("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
          ",\"args\":{\"name\":\"" + label + "\"}}");
  }
  void thread(std::uint32_t pid, std::uint32_t tid, const std::string& label) {
    event("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"" + label + "\"}}");
  }
  void span(std::uint32_t pid, std::uint32_t tid, const std::string& name,
            std::int64_t begin_us, std::int64_t end_us) {
    event(head(name, "B", begin_us, pid, tid) + "}");
    event(head(name, "E", end_us, pid, tid) + "}");
  }
  void complete(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                std::int64_t begin_us, std::int64_t dur_us) {
    event(head(name, "X", begin_us, pid, tid) + ",\"dur\":" + std::to_string(dur_us) + "}");
  }
  void instant(std::uint32_t pid, std::uint32_t tid, const std::string& name,
               std::int64_t ts_us) {
    event(head(name, "i", ts_us, pid, tid) + ",\"s\":\"t\"}");
  }
  void raw(const std::string& text) { event(text); }

  [[nodiscard]] std::string json(const std::string& dropped = "0") const {
    return "{\"traceEvents\":[\n" + events_ +
           "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"gnbody\","
           "\"dropped_events\":\"" +
           dropped + "\"}}";
  }

 private:
  static std::string head(const std::string& name, const char* ph, std::int64_t ts_us,
                          std::uint32_t pid, std::uint32_t tid) {
    return "{\"name\":\"" + name + "\",\"ph\":\"" + ph + "\",\"ts\":" + std::to_string(ts_us) +
           ".000,\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid);
  }
  void event(const std::string& text) {
    if (!events_.empty()) events_ += ",\n";
    events_ += text;
  }
  std::string events_;
};

/// Two-rank BSP round where rank 1 straggles in its local compute: the
/// critical path must run through rank 1's bsp.local_tasks up to the
/// alltoallv boundary. All numbers are exact (integer microseconds).
std::string straggler_trace() {
  TraceFixture f;
  f.process(0, "driver");
  f.thread(0, 0, "core 0");
  f.span(0, 0, obs::span::kStagePartition, 0, 500);  // no collectives: not a rank track
  for (std::uint32_t r = 1; r <= 2; ++r) {
    f.process(r, "rank " + std::to_string(r - 1) + " [monotonic]");
    f.thread(r, 0, "core 0");
  }
  // rank 0: fast compute, long wait inside the alltoallv.
  f.span(1, 0, obs::span::kBspRound, 0, 102'000);
  f.span(1, 0, obs::span::kBspLocalTasks, 0, 10'000);
  f.span(1, 0, obs::span::kCollAlltoallv, 10'000, 101'000);
  f.span(1, 0, obs::span::kCollBarrier, 101'000, 102'000);
  // rank 1: 10x the compute, arrives at the alltoallv last.
  f.span(2, 0, obs::span::kBspRound, 0, 102'000);
  f.span(2, 0, obs::span::kBspLocalTasks, 0, 100'000);
  f.span(2, 0, obs::span::kCollAlltoallv, 100'000, 101'000);
  f.span(2, 0, obs::span::kCollBarrier, 101'000, 102'000);
  return f.json();
}

/// Crash/rejoin shape: rank 0 loses time to recovery (checkpoint reload
/// nested inside recovery.recover) before the barrier; the dominant span
/// of the critical segment must be the recovery, categorized kRecovery.
std::string recovery_trace() {
  TraceFixture f;
  for (std::uint32_t r = 1; r <= 2; ++r) {
    f.process(r, "rank " + std::to_string(r - 1) + " [monotonic]");
    f.thread(r, 0, "core 0");
  }
  f.span(1, 0, obs::span::kBspRound, 0, 31'000);
  f.span(1, 0, obs::span::kBspLocalTasks, 0, 10'000);
  f.span(1, 0, obs::span::kRecovery, 10'000, 30'000);
  f.span(1, 0, obs::span::kCkptLoad, 12'000, 20'000);
  f.span(1, 0, obs::span::kCollBarrier, 30'000, 31'000);
  f.instant(1, 0, obs::span::kFaultCrash, 10'000);
  f.instant(1, 0, obs::span::kRejoinAdmit, 30'000);
  f.span(2, 0, obs::span::kBspRound, 0, 31'000);
  f.span(2, 0, obs::span::kBspLocalTasks, 0, 5'000);
  f.span(2, 0, obs::span::kCollBarrier, 5'000, 31'000);
  return f.json();
}

constexpr std::size_t cat(analysis::Category c) { return static_cast<std::size_t>(c); }

perfdiff::Entry entry(const std::string& path, double value, bool counted) {
  perfdiff::Entry e;
  e.path = path;
  e.value = value;
  e.counted = counted;
  return e;
}

}  // namespace

// ---------- load_trace ----------

TEST(LoadTrace, ParsesTracksSpansAndLabels) {
  const analysis::Trace trace = analysis::load_trace(straggler_trace());
  ASSERT_EQ(trace.tracks.size(), 3u);  // driver + 2 ranks, (pid, tid) order
  EXPECT_EQ(trace.clock, "monotonic");
  EXPECT_EQ(trace.dropped_events, 0u);
  EXPECT_EQ(trace.tracks[0].process_label, "driver");
  EXPECT_FALSE(trace.tracks[0].has_collectives());
  EXPECT_EQ(trace.tracks[1].process_label, "rank 0 [monotonic]");
  EXPECT_TRUE(trace.tracks[1].has_collectives());
  ASSERT_EQ(trace.tracks[1].spans.size(), 4u);
  // (begin, -end) order: the round container sorts before its children.
  EXPECT_EQ(trace.tracks[1].spans[0].name, obs::span::kBspRound);
  EXPECT_EQ(trace.tracks[1].spans[0].depth, 0u);
  EXPECT_EQ(trace.tracks[1].spans[1].name, obs::span::kBspLocalTasks);
  EXPECT_EQ(trace.tracks[1].spans[1].depth, 1u);
  // Self time: the container's duration minus its three children.
  EXPECT_EQ(trace.tracks[1].spans[0].self_ns, 0);
  EXPECT_EQ(trace.tracks[1].spans[1].self_ns, 10'000'000);
}

TEST(LoadTrace, VirtualClockCompleteEventsAndDrops) {
  TraceFixture f;
  f.process(0, "rank 0 [virtual]");
  f.thread(0, 0, "core 0");
  f.complete(0, 0, obs::span::kBspRound, 0, 1'000);
  f.complete(0, 0, obs::span::kBspLocalTasks, 0, 600);
  f.complete(0, 0, obs::span::kCollBarrier, 600, 400);
  const analysis::Trace trace = analysis::load_trace(f.json("7"));
  EXPECT_EQ(trace.clock, "virtual");
  EXPECT_EQ(trace.dropped_events, 7u);
  ASSERT_EQ(trace.tracks.size(), 1u);
  ASSERT_EQ(trace.tracks[0].spans.size(), 3u);
  EXPECT_EQ(trace.tracks[0].spans[0].duration_ns(), 1'000'000);
  const analysis::Report report = analysis::analyze(trace);
  EXPECT_EQ(report.dropped_events, 7u);
  EXPECT_NEAR(report.span_seconds.at(obs::span::kBspRound), 1e-3, 1e-12);
}

TEST(LoadTrace, RejectsMalformedInput) {
  EXPECT_THROW((void)analysis::load_trace("not json"), gnb::Error);
  EXPECT_THROW((void)analysis::load_trace("{\"noTraceEvents\":[]}"), gnb::Error);
  {
    TraceFixture f;  // E without a matching B
    f.raw("{\"name\":\"x\",\"ph\":\"E\",\"ts\":1.000,\"pid\":0,\"tid\":0}");
    EXPECT_THROW((void)analysis::load_trace(f.json()), gnb::Error);
  }
  {
    TraceFixture f;  // B never closed
    f.raw("{\"name\":\"x\",\"ph\":\"B\",\"ts\":1.000,\"pid\":0,\"tid\":0}");
    EXPECT_THROW((void)analysis::load_trace(f.json()), gnb::Error);
  }
}

// ---------- critical path + attribution ----------

TEST(CriticalPath, StragglerDominatesUpToTheAlltoallv) {
  const analysis::Report report = analysis::analyze(analysis::load_trace(straggler_trace()));
  EXPECT_EQ(report.rank_tracks, 2u);
  ASSERT_EQ(report.critical_path.size(), 2u);

  // Segment 0 ends at the alltoallv and runs through rank 1 (track index
  // 2), whose 100 ms of local compute is what everyone waited for.
  const analysis::CriticalSegment& s0 = report.critical_path[0];
  EXPECT_EQ(s0.track, 2u);
  EXPECT_EQ(s0.boundary, obs::span::kCollAlltoallv);
  EXPECT_EQ(s0.dominant_span, obs::span::kBspLocalTasks);
  EXPECT_EQ(s0.category, analysis::Category::kCompute);
  EXPECT_EQ(s0.begin_ns, 0);
  EXPECT_EQ(s0.end_ns, 100'000'000);

  // Segment 1: both ranks reach the barrier together — a zero-length
  // segment whose boundary is still on the path.
  const analysis::CriticalSegment& s1 = report.critical_path[1];
  EXPECT_EQ(s1.boundary, obs::span::kCollBarrier);
  EXPECT_EQ(s1.begin_ns, s1.end_ns);

  // Path = 100 ms compute + 1 ms alltoallv + 1 ms barrier = total extent.
  EXPECT_NEAR(report.critical_path_seconds, 0.102, 1e-9);
  EXPECT_NEAR(report.total_seconds, 0.102, 1e-9);

  // Attribution in closed form: compute 10+100 ms, exchange 91+1 ms
  // (the early rank's wait hides inside its alltoallv), wait 2x1 ms.
  EXPECT_NEAR(report.attribution_seconds[cat(analysis::Category::kCompute)], 0.110, 1e-9);
  EXPECT_NEAR(report.attribution_seconds[cat(analysis::Category::kExchange)], 0.092, 1e-9);
  EXPECT_NEAR(report.attribution_seconds[cat(analysis::Category::kWait)], 0.002, 1e-9);
  EXPECT_NEAR(report.attribution_seconds[cat(analysis::Category::kOverhead)], 0.0, 1e-9);

  // max/mean of per-rank compute: 100 / ((10+100)/2).
  EXPECT_NEAR(report.load_imbalance, 100.0 / 55.0, 1e-9);
}

TEST(CriticalPath, RecoveryShapeChargesTheRecoveryCategory) {
  const analysis::Report report = analysis::analyze(analysis::load_trace(recovery_trace()));
  ASSERT_EQ(report.critical_path.size(), 1u);
  const analysis::CriticalSegment& seg = report.critical_path[0];
  EXPECT_EQ(seg.track, 0u);  // rank 0 arrives at the barrier last
  EXPECT_EQ(seg.boundary, obs::span::kCollBarrier);
  // recovery.recover has 12 ms of self time vs 10 ms of local compute and
  // 8 ms of nested checkpoint load: the recovery dominates the window.
  EXPECT_EQ(seg.dominant_span, obs::span::kRecovery);
  EXPECT_EQ(seg.category, analysis::Category::kRecovery);
  EXPECT_NEAR(report.attribution_seconds[cat(analysis::Category::kRecovery)], 0.020, 1e-9);
  EXPECT_EQ(report.span_counts.at(obs::span::kFaultCrash), 1u);
  EXPECT_EQ(report.span_counts.at(obs::span::kRejoinAdmit), 1u);
}

// ---------- counted-metric curation ----------

TEST(CountedMetric, SeparatesDeterministicFromHostDependent) {
  EXPECT_TRUE(analysis::counted_metric("exchange.bytes"));
  EXPECT_TRUE(analysis::counted_metric("exchange.rounds"));
  EXPECT_TRUE(analysis::counted_metric("align.tasks"));
  EXPECT_TRUE(analysis::counted_metric("fault.crashes"));
  EXPECT_TRUE(analysis::counted_metric("rejoin.count"));
  EXPECT_TRUE(analysis::counted_metric("trace.dropped_events"));
  EXPECT_TRUE(analysis::counted_metric("rpc.requests_served"));

  EXPECT_FALSE(analysis::counted_metric("fault.recovery_us"));  // wall-clock
  EXPECT_FALSE(analysis::counted_metric("mem.peak_bytes"));     // allocator
  EXPECT_FALSE(analysis::counted_metric("cache.hits"));         // timing-raced
  EXPECT_FALSE(analysis::counted_metric("pool.batches"));
  EXPECT_FALSE(analysis::counted_metric("kernel.lane_steps"));  // backend-dependent
  EXPECT_FALSE(analysis::counted_metric("rpc.inflight_max"));
  EXPECT_FALSE(analysis::counted_metric("align.scratch_bytes"));
  EXPECT_FALSE(analysis::counted_metric("wall.seconds"));
}

TEST(CountedMetric, MergeMetricsJsonCurates) {
  analysis::Report report;
  const std::string doc =
      "{\"run\":{},\"phases\":[{\"phase\":\"align\",\"metrics\":{"
      "\"counters\":{\"exchange.bytes\":100,\"cache.hits\":5},"
      "\"gauges\":{\"exchange.rounds\":3,\"mem.peak_bytes\":999}}},"
      "{\"phase\":\"graph\",\"metrics\":{\"counters\":{\"exchange.bytes\":20}}}]}";
  analysis::merge_metrics_json(report, doc);
  EXPECT_EQ(report.metrics.at("exchange.bytes"), 120u);  // summed across phases
  EXPECT_EQ(report.metrics.at("exchange.rounds"), 3u);
  EXPECT_EQ(report.metrics.count("cache.hits"), 0u);
  EXPECT_EQ(report.metrics.count("mem.peak_bytes"), 0u);
  EXPECT_THROW(analysis::merge_metrics_json(report, "{\"no_phases\":1}"), gnb::Error);
}

// ---------- PERF_report.json determinism + flatten ----------

TEST(ReportJson, ByteIdenticalAcrossWritesAndRoundTrips) {
  const analysis::Report report = analysis::analyze(analysis::load_trace(straggler_trace()));
  std::ostringstream a, b;
  analysis::write_report_json(a, report);
  analysis::write_report_json(b, report);
  EXPECT_EQ(a.str(), b.str());

  std::string error;
  auto doc = obs::json::parse(a.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_NE(doc->find("perf_report_version"), nullptr);

  const std::vector<perfdiff::Entry> entries = perfdiff::flatten(a.str());
  bool saw_counted_span = false, saw_timing = false;
  for (const perfdiff::Entry& e : entries) {
    if (e.path == "counted.span_counts.coll.barrier") {
      saw_counted_span = true;
      EXPECT_TRUE(e.counted);
      EXPECT_EQ(e.value, 2.0);
    }
    if (e.path == "timing.total_seconds") {
      saw_timing = true;
      EXPECT_FALSE(e.counted);
    }
    // Per-rank / per-segment arrays are excluded from the diff surface
    // (timing.critical_path_seconds, the scalar, stays).
    EXPECT_EQ(e.path.find("timing.ranks."), std::string::npos) << e.path;
    EXPECT_EQ(e.path.find("timing.critical_path."), std::string::npos) << e.path;
  }
  EXPECT_TRUE(saw_counted_span);
  EXPECT_TRUE(saw_timing);
}

TEST(ReportJson, DroppedEventsReachTheCountedSection) {
  analysis::Trace trace = analysis::load_trace(straggler_trace());
  trace.dropped_events = 9;
  const analysis::Report report = analysis::analyze(trace);
  std::ostringstream out;
  analysis::write_report_json(out, report);
  const std::vector<perfdiff::Entry> entries = perfdiff::flatten(out.str());
  bool found = false;
  for (const perfdiff::Entry& e : entries) {
    if (e.path == "counted.dropped_events") {
      found = true;
      EXPECT_TRUE(e.counted);
      EXPECT_EQ(e.value, 9.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Flatten, BenchRowsUseLabelsAndCurateMetrics) {
  const std::string doc =
      "{\"bench\":\"kernels\",\"rows\":[{"
      "\"labels\":{\"case\":\"align\",\"threads\":2},"
      "\"rounds\":4,\"messages\":10,\"exchange_bytes\":100,\"wall_s\":1.5,"
      "\"metrics\":{\"counters\":{\"exchange.bytes\":100,\"cache.hits\":5},"
      "\"gauges\":{\"mem.peak_bytes\":123},"
      "\"histograms\":{\"rpc.reply_bytes\":{\"count\":2}}}}]}";
  const std::vector<perfdiff::Entry> entries = perfdiff::flatten(doc);
  auto find = [&](const std::string& path) -> const perfdiff::Entry* {
    for (const perfdiff::Entry& e : entries) {
      if (e.path == path) return &e;
    }
    return nullptr;
  };
  const std::string base = "rows.case=align,threads=2";
  ASSERT_NE(find(base + ".rounds"), nullptr);
  EXPECT_TRUE(find(base + ".rounds")->counted);
  ASSERT_NE(find(base + ".wall_s"), nullptr);
  EXPECT_FALSE(find(base + ".wall_s")->counted);
  ASSERT_NE(find(base + ".metrics.exchange.bytes"), nullptr);
  EXPECT_TRUE(find(base + ".metrics.exchange.bytes")->counted);
  ASSERT_NE(find(base + ".metrics.cache.hits"), nullptr);
  EXPECT_FALSE(find(base + ".metrics.cache.hits")->counted);
  EXPECT_EQ(find(base + ".metrics.rpc.reply_bytes.count"), nullptr);  // histograms skipped
  EXPECT_THROW((void)perfdiff::flatten("{\"neither\":1}"), gnb::Error);
}

// ---------- diff-gate edge cases ----------

TEST(PerfDiff, IdenticalReportsDiffEmpty) {
  const analysis::Report report = analysis::analyze(analysis::load_trace(straggler_trace()));
  std::ostringstream out;
  analysis::write_report_json(out, report);
  const auto base = perfdiff::flatten(out.str());
  const perfdiff::DiffResult result = perfdiff::diff(base, base);
  EXPECT_TRUE(result.changes.empty());
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(result.warnings, 0u);
  EXPECT_GT(result.compared, 10u);
  std::ostringstream table;
  EXPECT_TRUE(perfdiff::print_diff(table, result));
}

TEST(PerfDiff, MissingCountedPathIsGated) {
  const auto base = std::vector<perfdiff::Entry>{entry("counted.a", 5, true),
                                                 entry("counted.b", 3, true)};
  const auto cand = std::vector<perfdiff::Entry>{entry("counted.a", 5, true)};
  const perfdiff::DiffResult result = perfdiff::diff(base, cand);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kMissing);
  EXPECT_EQ(result.changes[0].path, "counted.b");
  std::ostringstream table;
  EXPECT_FALSE(perfdiff::print_diff(table, result));
}

TEST(PerfDiff, NewCountedPathIsGatedNewTimingIsNot) {
  const auto base = std::vector<perfdiff::Entry>{entry("counted.a", 5, true)};
  const auto cand = std::vector<perfdiff::Entry>{
      entry("counted.a", 5, true), entry("counted.fault.straggle", 2, true),
      entry("timing.extra_seconds", 1.0, false)};
  const perfdiff::DiffResult result = perfdiff::diff(base, cand);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kNew);
  EXPECT_EQ(result.changes[0].path, "counted.fault.straggle");
}

TEST(PerfDiff, ZeroBaselineGrowthFailsAnyGate) {
  const auto base = std::vector<perfdiff::Entry>{entry("counted.a", 0, true)};
  const auto cand = std::vector<perfdiff::Entry>{entry("counted.a", 4, true)};
  perfdiff::DiffOptions options;
  options.gate_pct = 50.0;  // even a generous gate cannot admit 0 -> 4
  const perfdiff::DiffResult result = perfdiff::diff(base, cand, options);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.changes.size(), 1u);
  EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kRegression);
}

TEST(PerfDiff, GatePctBoundsCountedGrowth) {
  const auto base = std::vector<perfdiff::Entry>{entry("counted.a", 100, true)};
  perfdiff::DiffOptions options;
  options.gate_pct = 10.0;
  {  // 5% growth: inside the gate, reported as within-gate change, passes
    const auto cand = std::vector<perfdiff::Entry>{entry("counted.a", 105, true)};
    const perfdiff::DiffResult result = perfdiff::diff(base, cand, options);
    EXPECT_EQ(result.regressions, 0u);
    ASSERT_EQ(result.changes.size(), 1u);
    EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kImprovement);
  }
  {  // 20% growth: beyond the gate
    const auto cand = std::vector<perfdiff::Entry>{entry("counted.a", 120, true)};
    const perfdiff::DiffResult result = perfdiff::diff(base, cand, options);
    EXPECT_EQ(result.regressions, 1u);
    EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kRegression);
  }
  {  // shrink: improvement, never a failure, even at gate 0
    const auto cand = std::vector<perfdiff::Entry>{entry("counted.a", 80, true)};
    const perfdiff::DiffResult result = perfdiff::diff(base, cand);
    EXPECT_EQ(result.regressions, 0u);
    ASSERT_EQ(result.changes.size(), 1u);
    EXPECT_EQ(result.changes[0].kind, perfdiff::ChangeKind::kImprovement);
  }
}

TEST(PerfDiff, TimingMovesWarnButNeverGate) {
  const auto base = std::vector<perfdiff::Entry>{entry("timing.total_seconds", 1.0, false),
                                                 entry("timing.gone_seconds", 2.0, false)};
  const auto cand = std::vector<perfdiff::Entry>{entry("timing.total_seconds", 1.5, false)};
  const perfdiff::DiffResult result = perfdiff::diff(base, cand);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(result.warnings, 2u);  // 50% move + missing timing path
  std::ostringstream table;
  EXPECT_TRUE(perfdiff::print_diff(table, result));  // warnings pass the gate

  // Below warn_pct the move is filtered out entirely.
  const auto quiet = std::vector<perfdiff::Entry>{entry("timing.total_seconds", 1.05, false),
                                                  entry("timing.gone_seconds", 2.0, false)};
  const perfdiff::DiffResult small = perfdiff::diff(base, quiet);
  EXPECT_EQ(small.warnings, 0u);
  EXPECT_TRUE(small.changes.empty());
}

// ---------- fidelity ----------

TEST(Fidelity, WeightedScoreAndOneSidedSpans) {
  analysis::Report real, sim;
  real.span_seconds = {{"a", 1.0}, {"b", 2.0}, {"gone", 0.5}};
  sim.span_seconds = {{"a", 0.5}, {"b", 2.0}, {"extra", 1.0}};
  const analysis::Fidelity f = analysis::compare_fidelity(real, sim);
  ASSERT_EQ(f.rows.size(), 2u);
  // Sorted by descending weight: b (2.0) before a (1.0).
  EXPECT_EQ(f.rows[0].name, "b");
  EXPECT_NEAR(f.rows[0].accuracy, 1.0, 1e-12);
  EXPECT_NEAR(f.rows[0].drift, 0.0, 1e-12);
  EXPECT_EQ(f.rows[1].name, "a");
  EXPECT_NEAR(f.rows[1].accuracy, 0.5, 1e-12);
  EXPECT_NEAR(f.rows[1].drift, -0.5, 1e-12);
  // score = (2.0 * 1.0 + 1.0 * 0.5) / 3.0
  EXPECT_NEAR(f.score, 2.5 / 3.0, 1e-12);
  ASSERT_EQ(f.real_only.size(), 1u);
  EXPECT_EQ(f.real_only[0], "gone");
  ASSERT_EQ(f.sim_only.size(), 1u);
  EXPECT_EQ(f.sim_only[0], "extra");
}

#if GNB_TRACE_ENABLED

// ---------- sim-vs-real fidelity on a seeded preset, both engines ----------

namespace {

/// Analyze a real 4-rank run of one engine on the tiny preset, via the
/// same JSON round trip `gnbody perf report` takes.
analysis::Report real_report(bool async_mode) {
  static const wl::SampledDataset dataset = wl::synthesize(wl::tiny_spec(), 21);
  pipeline::PipelineConfig config;
  config.k = wl::tiny_spec().k;
  const std::size_t nranks = 4;
  const pipeline::TaskSet tasks = pipeline::run_serial(dataset.reads, config, nranks);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  rt::World world(nranks);
  core::EngineConfig engine_config;
  world.run([&](rt::Rank& rank) {
    if (async_mode) {
      core::async_align(rank, dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                        engine_config);
    } else {
      core::bsp_align(rank, dataset.reads, tasks.bounds, tasks.per_rank[rank.id()],
                      engine_config);
    }
  });
  std::ostringstream out;
  tracer.write_json(out);
  tracer.disable();
  return analysis::analyze(analysis::load_trace(out.str()));
}

/// Analyze the matched-config simulation: same preset and seed, the
/// threaded_host machine at the same rank count, calibrated cost model.
analysis::Report sim_report(bool async_mode) {
  static const core::CostCalibration calibration = core::calibrate_cost_model(21, 0.05);
  const wl::SimWorkload workload = wl::model_workload(wl::tiny_spec(), 1.0, 21);
  const sim::MachineParams machine = sim::threaded_host(4);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.trace = true;
  options.calibration = calibration;

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  if (async_mode) {
    sim::simulate_async(machine, assignment, options);
  } else {
    sim::simulate_bsp(machine, assignment, options);
  }
  std::ostringstream out;
  tracer.write_json(out);
  tracer.disable();
  return analysis::analyze(analysis::load_trace(out.str()));
}

}  // namespace

class FidelityEngine : public ::testing::TestWithParam<bool> {};

TEST_P(FidelityEngine, MatchedConfigScoreIsBounded) {
  const bool async_mode = GetParam();
  const analysis::Report real = real_report(async_mode);
  const analysis::Report sim = sim_report(async_mode);
  ASSERT_EQ(real.clock, "monotonic");
  ASSERT_EQ(sim.clock, "virtual");
  ASSERT_GT(real.rank_tracks, 0u);
  ASSERT_GT(sim.rank_tracks, 0u);

  const analysis::Fidelity f = analysis::compare_fidelity(real, sim);
  ASSERT_FALSE(f.rows.empty());
  // The engine's top-level phase span must be shared between the domains.
  const char* top = async_mode ? obs::span::kAsyncAlign : obs::span::kBspAlign;
  bool saw_top = false;
  for (const analysis::FidelityRow& row : f.rows) {
    saw_top = saw_top || row.name == top;
    EXPECT_GT(row.accuracy, 0.0);
    EXPECT_LE(row.accuracy, 1.0 + 1e-12);
    EXPECT_GT(row.real_seconds, 0.0);
    EXPECT_GT(row.sim_seconds, 0.0);
  }
  EXPECT_TRUE(saw_top);
  // Deliberately loose bound: the calibrated model must land within 3
  // orders of magnitude, weighted — catching unit mistakes (ns vs us) and
  // broken stitching, not grading the cost model on a loaded CI host.
  EXPECT_GT(f.score, 1e-3);
  EXPECT_LE(f.score, 1.0 + 1e-12);

  // The same span taxonomy must come out of both clock domains with a
  // non-degenerate critical path on each side.
  EXPECT_FALSE(real.critical_path.empty());
  EXPECT_FALSE(sim.critical_path.empty());
  EXPECT_GT(real.critical_path_seconds, 0.0);
  EXPECT_GT(sim.critical_path_seconds, 0.0);
  EXPECT_LE(real.critical_path_seconds, real.total_seconds * 1.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, FidelityEngine, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "async" : "bsp";
                         });

// ---------- ring-drop accounting end to end ----------

TEST(TraceDrops, WorldRunExportsDropCounterMetric) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable(/*buffer_capacity=*/16);
  rt::World world(2);
  world.run([](rt::Rank&) {
    for (int i = 0; i < 200; ++i) {
      GNB_SPAN(obs::span::kBspRound);
    }
  });
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_GT(world.metrics().counter(obs::metric::kTraceDropped), 0u);
  EXPECT_TRUE(analysis::counted_metric(obs::metric::kTraceDropped));
  tracer.disable();
}

#endif  // GNB_TRACE_ENABLED
