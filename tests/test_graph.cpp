// Tests for the overlap/string graph, unitig assembler and PAF I/O.

#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "align/paf.hpp"
#include "align/xdrop.hpp"
#include "graph/assembler.hpp"
#include "graph/assembly.hpp"
#include "graph/gfa.hpp"
#include "graph/overlap_graph.hpp"
#include "util/error.hpp"
#include "wl/genome.hpp"

using namespace gnb;
using namespace gnb::graph;

namespace {

/// Perfectly tiled, error-free reads over a random genome: every adjacent
/// pair overlaps exactly; the ideal assembly is a single contig.
struct Tiling {
  seq::ReadStore reads;
  std::vector<std::size_t> lengths;
  std::vector<align::AlignmentRecord> records;
  std::size_t genome_length = 0;
};

Tiling make_tiling(std::size_t genome_length = 10'000, std::size_t read_length = 1'000,
                   std::size_t step = 400, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  wl::GenomeParams gp;
  gp.length = genome_length;
  gp.repeat_fraction = 0;
  const seq::Sequence genome = wl::generate_genome(gp, rng);

  Tiling tiling;
  tiling.genome_length = genome_length;
  for (std::size_t pos = 0; pos + read_length <= genome.size(); pos += step) {
    tiling.reads.add("r" + std::to_string(tiling.lengths.size()),
                     genome.subseq(pos, read_length));
    tiling.lengths.push_back(read_length);
  }
  // Align each read against the next two (when they still overlap by at
  // least a seed length).
  for (seq::ReadId i = 0; i + 1 < tiling.reads.size(); ++i) {
    for (seq::ReadId j = i + 1; j < tiling.reads.size() && j <= i + 2; ++j) {
      const auto shift = static_cast<std::uint32_t>(step * (j - i));
      if (shift + 17 > read_length) continue;  // no overlap left to seed
      const align::Seed anchor{shift, 0, 17, false};
      const align::Alignment alignment = align::xdrop_align(
          tiling.reads.get(i).sequence, tiling.reads.get(j).sequence, anchor, {});
      tiling.records.push_back(align::AlignmentRecord{i, j, alignment});
    }
  }
  return tiling;
}

}  // namespace

// ---------- node encoding ----------

TEST(Node, EncodingRoundTrip) {
  const NodeId node = make_node(1234, true);
  EXPECT_EQ(node_read(node), 1234u);
  EXPECT_TRUE(node_reverse(node));
  EXPECT_EQ(node_read(node_complement(node)), 1234u);
  EXPECT_FALSE(node_reverse(node_complement(node)));
  EXPECT_EQ(node_complement(node_complement(node)), node);
}

// ---------- graph construction ----------

TEST(OverlapGraph, PerfectTilingHasChainStructure) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  EXPECT_EQ(graph.stats().contained, 0u);  // equal lengths: nothing contained
  EXPECT_GT(graph.stats().dovetail_edges, 0u);
}

TEST(OverlapGraph, MirrorSymmetry) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  // For every edge u->v, the mirror ~v->~u exists with equal overlap.
  for (seq::ReadId read = 0; read < tiling.reads.size(); ++read) {
    for (const bool reverse : {false, true}) {
      const NodeId u = make_node(read, reverse);
      for (const OverlapEdge& edge : graph.out_edges(u)) {
        bool found = false;
        for (const OverlapEdge& mirror : graph.out_edges(node_complement(edge.to))) {
          if (mirror.to == node_complement(u)) {
            EXPECT_EQ(mirror.overlap, edge.overlap);
            found = true;
          }
        }
        EXPECT_TRUE(found) << "missing mirror edge";
      }
    }
  }
}

TEST(OverlapGraph, InDegreeEqualsComplementOutDegree) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  const NodeId node = make_node(3, false);
  EXPECT_EQ(graph.in_degree(node), graph.out_degree(node_complement(node)));
}

TEST(OverlapGraph, ContainmentDetected) {
  // Read 1 strictly inside read 0.
  Xoshiro256 rng(5);
  wl::GenomeParams gp;
  gp.length = 3'000;
  gp.repeat_fraction = 0;
  const seq::Sequence genome = wl::generate_genome(gp, rng);
  seq::ReadStore reads;
  reads.add("big", genome.subseq(0, 2'000));
  reads.add("small", genome.subseq(500, 800));
  const align::Seed anchor{500, 0, 17, false};
  const align::Alignment alignment =
      align::xdrop_align(reads.get(0).sequence, reads.get(1).sequence, anchor, {});
  const std::vector<align::AlignmentRecord> records{{0, 1, alignment}};
  const std::vector<std::size_t> lengths{2'000, 800};
  OverlapGraph graph(records, lengths, 100, 100, 30);
  EXPECT_TRUE(graph.is_contained(1));
  EXPECT_FALSE(graph.is_contained(0));
  EXPECT_EQ(graph.stats().dovetail_edges, 0u);  // containment adds no edge
}

TEST(OverlapGraph, MinOverlapFiltersWeakEdges) {
  const Tiling tiling = make_tiling();
  OverlapGraph strict(tiling.records, tiling.lengths, /*min_overlap=*/500, 100, 30);
  OverlapGraph loose(tiling.records, tiling.lengths, /*min_overlap=*/100, 100, 30);
  // The 200-base next-next overlaps are dropped by the strict threshold.
  EXPECT_LT(strict.stats().dovetail_edges, loose.stats().dovetail_edges);
}

TEST(OverlapGraph, TransitiveReductionRemovesSkipEdges) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  const std::size_t before = graph.stats().dovetail_edges;
  const std::size_t removed = graph.reduce_transitive(60);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(removed, before);
  // After reduction, interior nodes keep exactly the step-1 successor.
  const NodeId mid = make_node(5, false);
  EXPECT_EQ(graph.out_degree(mid), 1u);
  EXPECT_EQ(node_read(graph.out_edges(mid).front().to), 6u);
}

TEST(OverlapGraph, ReductionIsIdempotent) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  EXPECT_EQ(graph.reduce_transitive(60), 0u);
}

TEST(OverlapGraph, BestOverlapPruneYieldsDegreeAtMostOne) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.prune_best_overlap();
  for (seq::ReadId read = 0; read < tiling.reads.size(); ++read) {
    for (const bool reverse : {false, true}) {
      EXPECT_LE(graph.out_degree(make_node(read, reverse)), 1u);
      EXPECT_LE(graph.in_degree(make_node(read, reverse)), 1u);
    }
  }
}

// ---------- assembler ----------

TEST(Assembler, PerfectTilingAssemblesToOneContig) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  const auto contigs = extract_unitigs(graph, tiling.lengths);
  const auto stats = assembly_stats(contigs);
  EXPECT_EQ(stats.contigs, 1u);
  EXPECT_EQ(contigs[0].path.size(), tiling.reads.size());
  // Genome 10k, last read ends at 9800+200... contig covers all tiled bases.
  EXPECT_NEAR(static_cast<double>(stats.longest), 9'800.0, 50.0);
}

TEST(Assembler, ContigSequenceMatchesGenomeRegion) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  const auto contigs = extract_unitigs(graph, tiling.lengths);
  ASSERT_EQ(contigs.size(), 1u);
  const seq::Sequence sequence = contig_sequence(contigs[0], tiling.reads);
  EXPECT_EQ(sequence.size(), contigs[0].length);
  // Error-free tiling: the contig must reproduce the reads verbatim; check
  // the first read is a prefix (possibly reverse-complemented walk).
  const seq::ReadId first = node_read(contigs[0].path.front());
  seq::Sequence expect = tiling.reads.get(first).sequence;
  if (node_reverse(contigs[0].path.front())) expect = expect.reverse_complement();
  EXPECT_EQ(sequence.subseq(0, expect.size()), expect);
}

TEST(Assembler, EmptyGraphYieldsSingletonContigs) {
  const std::vector<align::AlignmentRecord> no_records;
  const std::vector<std::size_t> lengths{500, 700, 900};
  OverlapGraph graph(no_records, lengths);
  const auto contigs = extract_unitigs(graph, lengths);
  EXPECT_EQ(contigs.size(), 3u);
  const auto stats = assembly_stats(contigs);
  EXPECT_EQ(stats.total_length, 2'100u);
  EXPECT_EQ(stats.longest, 900u);
  // Half of 2100 is 1050; 900 alone is not enough, 900+700 is: N50 = 700.
  EXPECT_EQ(stats.n50, 700u);
}

TEST(Assembler, N50Definition) {
  std::vector<Contig> contigs(4);
  contigs[0].length = 10;
  contigs[1].length = 20;
  contigs[2].length = 30;
  contigs[3].length = 40;  // total 100; sorted desc: 40 (40), 30 (70) -> N50=30
  const auto stats = assembly_stats(contigs);
  EXPECT_EQ(stats.n50, 30u);
}

TEST(Assembler, EveryNonContainedReadUsedOnce) {
  const Tiling tiling = make_tiling(14'000, 1'000, 300, 7);
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  const auto contigs = extract_unitigs(graph, tiling.lengths);
  std::vector<int> seen(tiling.reads.size(), 0);
  for (const auto& contig : contigs)
    for (const NodeId node : contig.path) ++seen[node_read(node)];
  for (seq::ReadId read = 0; read < tiling.reads.size(); ++read)
    EXPECT_EQ(seen[read], graph.is_contained(read) ? 0 : 1) << "read " << read;
}

// ---------- edge cases ----------

TEST(Assembler, ZeroReadsYieldNoContigsAndHeaderOnlyGfa) {
  const seq::ReadStore no_reads;
  const std::vector<align::AlignmentRecord> no_records;
  const AssemblyResult result = assemble_serial(no_records, no_reads);
  EXPECT_EQ(result.contigs.size(), 0u);
  EXPECT_EQ(result.edges.size(), 0u);
  EXPECT_EQ(result.stats.contigs, 0u);
  EXPECT_EQ(result.stats.n50, 0u);
  EXPECT_EQ(result.gfa, "H\tVN:Z:1.0\n");
}

TEST(Assembler, AllReadsContainedYieldNothing) {
  const std::vector<std::size_t> lengths{400, 500, 600};
  OverlapGraph graph(3, std::vector<bool>(3, true), std::span<const OverlapEdge>{});
  EXPECT_EQ(graph.stats().contained, 3u);
  const auto contigs = extract_unitigs(graph, lengths);
  EXPECT_EQ(contigs.size(), 0u);
  seq::ReadStore reads;
  reads.add("a", seq::Sequence::from_codes(std::vector<std::uint8_t>(400, 0)));
  reads.add("b", seq::Sequence::from_codes(std::vector<std::uint8_t>(500, 1)));
  reads.add("c", seq::Sequence::from_codes(std::vector<std::uint8_t>(600, 2)));
  std::ostringstream out;
  write_gfa(out, graph, reads);
  EXPECT_EQ(out.str(), "H\tVN:Z:1.0\n");  // no S lines, no L lines
}

TEST(Assembler, SingleReadBecomesSingletonContig) {
  const std::vector<std::size_t> lengths{1'234};
  OverlapGraph graph(1, {}, std::span<const OverlapEdge>{});
  const auto contigs = extract_unitigs(graph, lengths);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].path, std::vector<NodeId>{make_node(0, false)});
  EXPECT_EQ(contigs[0].length, 1'234u);
  EXPECT_TRUE(contigs[0].advances.empty());
}

TEST(Assembler, CircularUnitigBreaksAtLowestForwardRead) {
  // Forward cycle r0 -> r1 -> r2 -> r0 with mirrors: every node has
  // out-degree 1 and in-degree 1, so pass 1 finds no start and pass 2 must
  // break the cycle at read 0, forward orientation.
  const NodeId f0 = make_node(0, false), f1 = make_node(1, false), f2 = make_node(2, false);
  const std::vector<OverlapEdge> edges{
      {f0, f1, 100, 100},
      {node_complement(f1), node_complement(f0), 100, 100},
      {f1, f2, 100, 100},
      {node_complement(f2), node_complement(f1), 100, 100},
      {f2, f0, 100, 100},
      {node_complement(f0), node_complement(f2), 100, 100},
  };
  OverlapGraph graph(3, {}, edges);
  const std::vector<std::size_t> lengths{300, 300, 300};
  const auto contigs = extract_unitigs(graph, lengths);
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].path, (std::vector<NodeId>{f0, f1, f2}));
  // 300 + 2 * (300 - 100): the closing wrap edge adds no bases.
  EXPECT_EQ(contigs[0].length, 700u);
}

TEST(Assembler, N50OfSingleContigIsItsLength) {
  std::vector<Contig> one(1);
  one[0].length = 4'242;
  const auto stats = assembly_stats(one);
  EXPECT_EQ(stats.contigs, 1u);
  EXPECT_EQ(stats.n50, 4'242u);
  EXPECT_EQ(stats.longest, 4'242u);
  EXPECT_EQ(stats.total_length, 4'242u);
}

TEST(OverlapGraph, OutEdgesBreakOverlapTiesByTargetId) {
  const NodeId u = make_node(0, false);
  const std::vector<OverlapEdge> edges{
      {u, make_node(2, false), 150, 10},
      {node_complement(make_node(2, false)), node_complement(u), 150, 10},
      {u, make_node(1, false), 150, 10},
      {node_complement(make_node(1, false)), node_complement(u), 150, 10},
      {u, make_node(3, false), 200, 10},
      {node_complement(make_node(3, false)), node_complement(u), 200, 10},
  };
  OverlapGraph graph(4, {}, edges);
  const auto sorted = graph.out_edges(u);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].to, make_node(3, false));  // strongest overlap first
  EXPECT_EQ(sorted[1].to, make_node(1, false));  // tie: lower target id
  EXPECT_EQ(sorted[2].to, make_node(2, false));
}

TEST(Gfa, FlatWriterMatchesGraphWriter) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  std::ostringstream via_graph;
  write_gfa(via_graph, graph, tiling.reads);
  std::vector<bool> contained(tiling.reads.size());
  for (seq::ReadId id = 0; id < tiling.reads.size(); ++id)
    contained[id] = graph.is_contained(id);
  const std::vector<OverlapEdge> live = graph.live_edges();
  std::ostringstream via_flat;
  write_gfa(via_flat, tiling.reads.size(), contained, live, tiling.reads);
  EXPECT_EQ(via_graph.str(), via_flat.str());
}

// ---------- GFA ----------

TEST(Gfa, EmitsSegmentsAndLinks) {
  const Tiling tiling = make_tiling();
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  graph.reduce_transitive(60);
  std::ostringstream out;
  write_gfa(out, graph, tiling.reads);

  std::size_t segments = 0, links = 0;
  std::istringstream in(out.str());
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.rfind("H\t", 0) == 0) saw_header = true;
    if (line.rfind("S\t", 0) == 0) ++segments;
    if (line.rfind("L\t", 0) == 0) ++links;
  }
  EXPECT_TRUE(saw_header);
  EXPECT_EQ(segments, tiling.reads.size());  // nothing contained
  // Each undirected link appears once: half the surviving directed edges.
  EXPECT_EQ(links, graph.stats().final_edges() / 2);
}

TEST(Gfa, WithSequencesEmitsBases) {
  const Tiling tiling = make_tiling(4'000, 600, 300, 3);
  OverlapGraph graph(tiling.records, tiling.lengths, 100, 100, 30);
  std::ostringstream out;
  GfaOptions options;
  options.with_sequences = true;
  write_gfa(out, graph, tiling.reads, options);
  // The first read's bases appear verbatim.
  EXPECT_NE(out.str().find(tiling.reads.get(0).sequence.to_string()), std::string::npos);
}

TEST(Gfa, ContainedReadsOmitted) {
  Xoshiro256 rng(6);
  wl::GenomeParams gp;
  gp.length = 3'000;
  gp.repeat_fraction = 0;
  const seq::Sequence genome = wl::generate_genome(gp, rng);
  seq::ReadStore reads;
  reads.add("big", genome.subseq(0, 2'000));
  reads.add("small", genome.subseq(500, 800));
  const align::Seed anchor{500, 0, 17, false};
  const align::Alignment alignment =
      align::xdrop_align(reads.get(0).sequence, reads.get(1).sequence, anchor, {});
  const std::vector<align::AlignmentRecord> records{{0, 1, alignment}};
  const std::vector<std::size_t> lengths{2'000, 800};
  OverlapGraph graph(records, lengths, 100, 100, 30);
  std::ostringstream out;
  write_gfa(out, graph, reads);
  EXPECT_NE(out.str().find("S\tbig"), std::string::npos);
  EXPECT_EQ(out.str().find("S\tsmall"), std::string::npos);
}

// ---------- PAF ----------

TEST(Paf, FormatAndParseRoundTrip) {
  align::PafRecord record;
  record.query_name = "readA";
  record.query_length = 1'000;
  record.query_begin = 10;
  record.query_end = 900;
  record.reverse_strand = true;
  record.target_name = "readB";
  record.target_length = 1'200;
  record.target_begin = 5;
  record.target_end = 880;
  record.matches = 800;
  record.block_length = 890;
  record.mapq = 255;
  record.score = 777;
  const align::PafRecord back = align::parse_paf(align::format_paf(record));
  EXPECT_EQ(back.query_name, record.query_name);
  EXPECT_EQ(back.query_end, record.query_end);
  EXPECT_EQ(back.reverse_strand, record.reverse_strand);
  EXPECT_EQ(back.target_begin, record.target_begin);
  EXPECT_EQ(back.matches, record.matches);
  EXPECT_EQ(back.score, record.score);
}

TEST(Paf, MalformedLinesThrow) {
  EXPECT_THROW(align::parse_paf("too\tfew\tfields"), Error);
  EXPECT_THROW(align::parse_paf("q\tx\t0\t1\t+\tt\t10\t0\t1\t1\t1\t255"), Error);  // bad num
  EXPECT_THROW(align::parse_paf("q\t10\t0\t1\t?\tt\t10\t0\t1\t1\t1\t255"), Error); // bad strand
}

TEST(Paf, ReverseStrandCoordinatesFlipped) {
  seq::ReadStore reads;
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> codes(200);
  for (auto& code : codes) code = static_cast<std::uint8_t>(rng.below(4));
  reads.add("q", seq::Sequence::from_codes(codes));
  reads.add("t", seq::Sequence::from_codes(codes));

  align::AlignmentRecord record;
  record.read_a = 0;
  record.read_b = 1;
  record.alignment.a_begin = 0;
  record.alignment.a_end = 150;
  record.alignment.b_begin = 20;  // on the reverse complement of t
  record.alignment.b_end = 170;
  record.alignment.b_reversed = true;
  record.alignment.score = 100;
  const align::PafRecord paf = align::to_paf(record, reads);
  EXPECT_TRUE(paf.reverse_strand);
  EXPECT_EQ(paf.target_begin, 200u - 170u);  // flipped to forward coords
  EXPECT_EQ(paf.target_end, 200u - 20u);
  EXPECT_LE(paf.matches, paf.block_length);
}

TEST(Paf, WriteProducesOneLinePerRecord) {
  const Tiling tiling = make_tiling(5'000, 800, 400, 9);
  std::ostringstream out;
  align::write_paf(out, tiling.records, tiling.reads);
  std::size_t lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    const align::PafRecord record = align::parse_paf(line);  // every line parses
    EXPECT_LE(record.query_begin, record.query_end);
    EXPECT_LE(record.target_begin, record.target_end);
  }
  EXPECT_EQ(lines, tiling.records.size());
}
