// Unit and property tests for gnb_align: the X-drop kernel against exact
// DP oracles, scoring invariants, banded alignment, overlap classification
// and protein scoring.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "align/affine.hpp"
#include "align/banded.hpp"
#include "align/batch.hpp"
#include "align/xdrop_batch.hpp"
#include "align/exact.hpp"
#include "align/overlap.hpp"
#include "align/paf.hpp"
#include "align/protein.hpp"
#include "align/xdrop.hpp"
#include "seq/read_store.hpp"
#include "seq/sequence.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace gnb;
using namespace gnb::align;

namespace {

using Codes = std::vector<std::uint8_t>;

Codes random_codes(std::size_t length, Xoshiro256& rng) {
  Codes c(length);
  for (auto& x : c) x = static_cast<std::uint8_t>(rng.below(4));
  return c;
}

/// Mutate with substitutions/indels at `rate`.
Codes mutate(const Codes& src, double rate, Xoshiro256& rng) {
  Codes out;
  out.reserve(src.size());
  for (const auto base : src) {
    const double roll = rng.uniform();
    if (roll < rate / 3) continue;
    if (roll < 2 * rate / 3) out.push_back(static_cast<std::uint8_t>(rng.below(4)));
    if (roll < rate) {
      out.push_back(static_cast<std::uint8_t>((base + 1 + rng.below(3)) & 3));
    } else {
      out.push_back(base);
    }
  }
  return out;
}

/// Find a short exact anchor between a and b by scanning.
std::optional<Seed> find_anchor(const Codes& a, const Codes& b, std::uint16_t k) {
  for (std::uint32_t pa = 0; pa + k <= a.size(); ++pa) {
    for (std::uint32_t pb = 0; pb + k <= b.size(); ++pb) {
      if (std::equal(a.begin() + pa, a.begin() + pa + k, b.begin() + pb))
        return Seed{pa, pb, k, false};
    }
  }
  return std::nullopt;
}

}  // namespace

// ---------- xdrop_extend ----------

TEST(XdropExtend, EmptyInputsScoreZero) {
  const Codes a{0, 1, 2};
  const Codes empty;
  XDropParams params;
  EXPECT_EQ(xdrop_extend(a, empty, params).score, 0);
  EXPECT_EQ(xdrop_extend(empty, a, params).score, 0);
}

TEST(XdropExtend, PerfectMatchScoresFullLength) {
  Xoshiro256 rng(1);
  const Codes a = random_codes(200, rng);
  XDropParams params;
  const Extension ext = xdrop_extend(a, a, params);
  EXPECT_EQ(ext.score, 200);
  EXPECT_EQ(ext.a_len, 200u);
  EXPECT_EQ(ext.b_len, 200u);
}

TEST(XdropExtend, UnrelatedSequencesTerminateEarly) {
  Xoshiro256 rng(2);
  const Codes a = random_codes(3000, rng);
  const Codes b = random_codes(3000, rng);
  XDropParams params;
  const Extension ext = xdrop_extend(a, b, params);
  // Full DP would be 9M cells; the X-drop band must collapse long before
  // that (occasional lucky stretches extend the band's life, so this is a
  // ratio bound, not a tiny constant).
  EXPECT_LT(ext.cells, 9'000'000u / 8);
}

TEST(XdropExtend, ScratchIsCleanAcrossCalls) {
  // Regression guard for the thread-local scratch reuse: the same result
  // must come out whether or not a different extension ran before.
  Xoshiro256 rng(3);
  const Codes a = random_codes(500, rng);
  const Codes b = mutate(a, 0.1, rng);
  XDropParams params;
  const Extension fresh = xdrop_extend(a, b, params);
  const Codes junk1 = random_codes(800, rng);
  const Codes junk2 = random_codes(900, rng);
  (void)xdrop_extend(junk1, junk2, params);
  const Extension again = xdrop_extend(a, b, params);
  EXPECT_EQ(fresh.score, again.score);
  EXPECT_EQ(fresh.a_len, again.a_len);
  EXPECT_EQ(fresh.b_len, again.b_len);
}

TEST(XdropExtend, ScratchShrinksAfterPathologicalRead) {
  // A single huge `b` grows the thread-local rows to O(|b|); the next small
  // extension must release the watermark (down to the floor), or every pool
  // worker that ever saw a long read pins that memory for the process life.
  XDropParams params;
  const Codes tiny{0, 1};
  const Codes huge(200'000, 0);
  (void)xdrop_extend(tiny, huge, params);
  EXPECT_GE(align::detail::scratch_cells(), 200'001u);
  EXPECT_GE(scratch_peak_bytes(),
            static_cast<std::uint64_t>(align::detail::scratch_cells()) * sizeof(std::int32_t));
  const Codes small(64, 1);
  (void)xdrop_extend(small, small, params);
  EXPECT_LT(align::detail::scratch_cells(), 20'000u);  // shrunk to the floor
  EXPECT_TRUE(align::detail::scratch_invariant_holds());
  // The floor is never deallocated: repeated small calls stay put.
  const std::size_t floor = align::detail::scratch_cells();
  (void)xdrop_extend(small, small, params);
  EXPECT_EQ(align::detail::scratch_cells(), floor);
}

TEST(XdropExtend, ScratchInvariantSurvivesMidExtensionException) {
  Xoshiro256 rng(71);
  const Codes a = random_codes(300, rng);
  const Codes b = mutate(a, 0.05, rng);
  XDropParams params;
  const Extension clean = xdrop_extend(a, b, params);
  ASSERT_TRUE(align::detail::scratch_invariant_holds());

  // Fail mid-extension: the guard must wipe the partially written band so
  // the kNegInf between-calls invariant survives the unwind.
  align::detail::xdrop_row_hook = [](std::size_t row) {
    if (row == 40) throw std::runtime_error("injected mid-extension failure");
  };
  EXPECT_THROW((void)xdrop_extend(a, b, params), std::runtime_error);
  align::detail::xdrop_row_hook = nullptr;
  EXPECT_TRUE(align::detail::scratch_invariant_holds());

  // And the next extension on this thread is unpoisoned.
  const Extension again = xdrop_extend(a, b, params);
  EXPECT_EQ(clean.score, again.score);
  EXPECT_EQ(clean.a_len, again.a_len);
  EXPECT_EQ(clean.b_len, again.b_len);
}

TEST(XdropExtend, ScoreNonNegative) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Codes a = random_codes(50 + rng.below(200), rng);
    const Codes b = random_codes(50 + rng.below(200), rng);
    XDropParams params;
    EXPECT_GE(xdrop_extend(a, b, params).score, 0);
  }
}

// ---------- xdrop_align vs exact oracle ----------

struct OracleCase {
  std::uint64_t seed;
  double error_rate;
};

class XdropOracle : public ::testing::TestWithParam<OracleCase> {};

TEST_P(XdropOracle, MatchesAnchoredDpWithLargeX) {
  Xoshiro256 rng(GetParam().seed);
  const Codes ancestor = random_codes(300, rng);
  const Codes a = mutate(ancestor, GetParam().error_rate, rng);
  const Codes b = mutate(ancestor, GetParam().error_rate, rng);
  const auto anchor = find_anchor(a, b, 10);
  if (!anchor.has_value()) GTEST_SKIP() << "no anchor at this mutation rate";
  XDropParams params;
  params.x = 100'000;  // effectively unbanded: must equal the exact DP
  const Alignment got = xdrop_align(a, b, *anchor, params);
  const std::int32_t want = anchored_best_score(a, b, *anchor);
  EXPECT_EQ(got.score, want);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XdropOracle,
    ::testing::Values(OracleCase{11, 0.0}, OracleCase{12, 0.02}, OracleCase{13, 0.05},
                      OracleCase{14, 0.10}, OracleCase{15, 0.15}, OracleCase{16, 0.20},
                      OracleCase{17, 0.10}, OracleCase{18, 0.05}, OracleCase{19, 0.15}));

TEST(XdropAlign, DefaultXCloseToExactOnTrueOverlap) {
  Xoshiro256 rng(21);
  const Codes ancestor = random_codes(400, rng);
  const Codes a = mutate(ancestor, 0.1, rng);
  const Codes b = mutate(ancestor, 0.1, rng);
  const auto anchor = find_anchor(a, b, 10);
  ASSERT_TRUE(anchor.has_value());
  const Alignment banded = xdrop_align(a, b, *anchor, XDropParams{});
  const std::int32_t exact = anchored_best_score(a, b, *anchor);
  EXPECT_LE(banded.score, exact);
  EXPECT_GE(banded.score, exact - 8);  // default X rarely loses the optimum
}

TEST(XdropAlign, CoordinatesContainSeedAndAreInBounds) {
  Xoshiro256 rng(22);
  const Codes ancestor = random_codes(300, rng);
  const Codes a = mutate(ancestor, 0.08, rng);
  const Codes b = mutate(ancestor, 0.08, rng);
  const auto anchor = find_anchor(a, b, 12);
  ASSERT_TRUE(anchor.has_value());
  const Alignment alignment = xdrop_align(a, b, *anchor, XDropParams{});
  EXPECT_LE(alignment.a_begin, anchor->a_pos);
  EXPECT_GE(alignment.a_end, anchor->a_pos + anchor->length);
  EXPECT_LE(alignment.a_end, a.size());
  EXPECT_LE(alignment.b_begin, anchor->b_pos);
  EXPECT_GE(alignment.b_end, anchor->b_pos + anchor->length);
  EXPECT_LE(alignment.b_end, b.size());
}

TEST(XdropAlign, ReverseComplementOrientation) {
  // A read and the reverse complement of another read from the same locus
  // must align once the seed carries b_reversed.
  Xoshiro256 rng(23);
  const Codes ancestor = random_codes(250, rng);
  const Codes a = mutate(ancestor, 0.05, rng);
  Codes b = mutate(ancestor, 0.05, rng);
  // b as the sequencer would emit it from the other strand:
  std::reverse(b.begin(), b.end());
  for (auto& code : b) code = static_cast<std::uint8_t>(3 - code);
  const seq::Sequence sa = seq::Sequence::from_codes(a);
  const seq::Sequence sb = seq::Sequence::from_codes(b);

  // Orient b (rc) and find an anchor in oriented coordinates.
  const auto oriented = sb.reverse_complement().unpack();
  const auto anchor = find_anchor(a, oriented, 12);
  ASSERT_TRUE(anchor.has_value());
  Seed seed = *anchor;
  seed.b_reversed = true;
  const Alignment alignment = xdrop_align(sa, sb, seed, XDropParams{});
  EXPECT_TRUE(alignment.b_reversed);
  // The two reads share ~250 mutated bases: expect a strong alignment.
  EXPECT_GT(alignment.score, 120);
}

TEST(XdropAlign, SeedAtSequenceEdges) {
  const Codes a{0, 1, 2, 3, 0, 1, 2, 3};
  const Codes b{0, 1, 2, 3, 0, 1, 2, 3};
  // Seed at the very start…
  Alignment front = xdrop_align(a, b, Seed{0, 0, 4, false}, XDropParams{});
  EXPECT_EQ(front.score, 8);
  // …and at the very end.
  Alignment back = xdrop_align(a, b, Seed{4, 4, 4, false}, XDropParams{});
  EXPECT_EQ(back.score, 8);
}

TEST(XdropAlign, IdenticalSequencesFullScore) {
  Xoshiro256 rng(25);
  const Codes a = random_codes(128, rng);
  const Alignment alignment = xdrop_align(a, a, Seed{60, 60, 10, false}, XDropParams{});
  EXPECT_EQ(alignment.score, 128);
  EXPECT_EQ(alignment.a_begin, 0u);
  EXPECT_EQ(alignment.a_end, 128u);
}

TEST(XdropAlign, SymmetricUnderSwap) {
  Xoshiro256 rng(26);
  const Codes ancestor = random_codes(200, rng);
  const Codes a = mutate(ancestor, 0.1, rng);
  const Codes b = mutate(ancestor, 0.1, rng);
  const auto anchor = find_anchor(a, b, 10);
  ASSERT_TRUE(anchor.has_value());
  const Alignment ab = xdrop_align(a, b, *anchor, XDropParams{});
  const Seed swapped{anchor->b_pos, anchor->a_pos, anchor->length, false};
  const Alignment ba = xdrop_align(b, a, swapped, XDropParams{});
  EXPECT_EQ(ab.score, ba.score);
}

// ---------- exact DP ----------

TEST(SmithWaterman, KnownSmallCase) {
  // a: ACGT, b: CG -> local alignment CG, score 2 (match=1).
  const Codes a{0, 1, 2, 3};
  const Codes b{1, 2};
  const LocalAlignment r = smith_waterman(a, b);
  EXPECT_EQ(r.score, 2);
  EXPECT_EQ(r.a_begin, 1u);
  EXPECT_EQ(r.a_end, 3u);
  EXPECT_EQ(r.b_begin, 0u);
  EXPECT_EQ(r.b_end, 2u);
}

TEST(SmithWaterman, ScoreNonNegativeAndBounded) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Codes a = random_codes(60 + rng.below(80), rng);
    const Codes b = random_codes(60 + rng.below(80), rng);
    const LocalAlignment r = smith_waterman(a, b);
    EXPECT_GE(r.score, 0);
    EXPECT_LE(r.score, static_cast<std::int32_t>(std::min(a.size(), b.size())));
  }
}

TEST(SmithWaterman, CoordinatesRecoverScore) {
  // Re-running SW on the reported sub-ranges must reach the same score.
  Xoshiro256 rng(32);
  const Codes ancestor = random_codes(120, rng);
  const Codes a = mutate(ancestor, 0.1, rng);
  const Codes b = mutate(ancestor, 0.1, rng);
  const LocalAlignment r = smith_waterman(a, b);
  ASSERT_GT(r.score, 0);
  const Codes sub_a(a.begin() + r.a_begin, a.begin() + r.a_end);
  const Codes sub_b(b.begin() + r.b_begin, b.begin() + r.b_end);
  EXPECT_EQ(smith_waterman(sub_a, sub_b).score, r.score);
}

TEST(NeedlemanWunsch, KnownCases) {
  const Codes a{0, 1, 2, 3};
  EXPECT_EQ(needleman_wunsch_score(a, a), 4);
  const Codes empty;
  EXPECT_EQ(needleman_wunsch_score(a, empty), -4);  // all gaps
  const Codes b{0, 1, 3};  // one deletion
  EXPECT_EQ(needleman_wunsch_score(a, b), 2);       // 3 matches - 1 gap
}

TEST(NeedlemanWunsch, NeverAboveSmithWaterman) {
  Xoshiro256 rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const Codes a = random_codes(50, rng);
    const Codes b = random_codes(50, rng);
    EXPECT_LE(needleman_wunsch_score(a, b), smith_waterman(a, b).score);
  }
}

TEST(AnchoredOracle, SeedOnlyWhenNothingExtends) {
  const Codes a{0, 0, 1, 2, 3, 3};
  const Codes b{1, 1, 1, 2, 0, 0};
  // Seed covering b[2..4) == a[2..4) == {1,2}.
  const Seed seed{2, 2, 2, false};
  const std::int32_t score = anchored_best_score(a, b, seed);
  EXPECT_GE(score, 2);
}

// ---------- banded ----------

TEST(Banded, MatchesNwWhenBandIsWide) {
  Xoshiro256 rng(41);
  const Codes ancestor = random_codes(150, rng);
  const Codes a = mutate(ancestor, 0.08, rng);
  const Codes b = mutate(ancestor, 0.08, rng);
  const BandedResult banded = banded_global(a, b, std::max(a.size(), b.size()));
  EXPECT_EQ(banded.score, needleman_wunsch_score(a, b));
}

TEST(Banded, NarrowBandNeverBeatsExact) {
  Xoshiro256 rng(42);
  const Codes ancestor = random_codes(150, rng);
  const Codes a = mutate(ancestor, 0.1, rng);
  const Codes b = mutate(ancestor, 0.1, rng);
  const std::size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  const BandedResult banded = banded_global(a, b, diff + 4);
  EXPECT_LE(banded.score, needleman_wunsch_score(a, b));
}

TEST(Banded, TooNarrowBandThrows) {
  const Codes a(20, 0);
  const Codes b(5, 0);
  EXPECT_THROW(banded_global(a, b, 3), Error);
}

TEST(Banded, CellCountBoundedByBand) {
  const Codes a(200, 1), b(200, 1);
  const BandedResult r = banded_global(a, b, 5);
  EXPECT_LE(r.cells, 200u * 11 + 11);
}

// ---------- overlap classification ----------

namespace {
Alignment make_alignment(std::uint32_t ab, std::uint32_t ae, std::uint32_t bb,
                         std::uint32_t be) {
  Alignment alignment;
  alignment.a_begin = ab;
  alignment.a_end = ae;
  alignment.b_begin = bb;
  alignment.b_end = be;
  alignment.score = 100;
  return alignment;
}
}  // namespace

TEST(Overlap, DovetailAtoB) {
  // Suffix of A (600..1000) matches prefix of B (0..400).
  const auto kind = classify_overlap(make_alignment(600, 1000, 0, 400), 1000, 900, 30);
  EXPECT_EQ(kind, OverlapKind::kDovetailAB);
}

TEST(Overlap, DovetailBtoA) {
  const auto kind = classify_overlap(make_alignment(0, 400, 500, 900), 1000, 900, 30);
  EXPECT_EQ(kind, OverlapKind::kDovetailBA);
}

TEST(Overlap, Containment) {
  EXPECT_EQ(classify_overlap(make_alignment(200, 700, 0, 500), 1000, 500, 30),
            OverlapKind::kContainsB);
  EXPECT_EQ(classify_overlap(make_alignment(0, 500, 200, 700), 500, 1000, 30),
            OverlapKind::kContainedInB);
}

TEST(Overlap, SlackToleratesFrayedEnds) {
  // 20 unaligned bases at A's end should still read as dovetail A->B.
  const auto kind = classify_overlap(make_alignment(600, 980, 15, 400), 1000, 900, 30);
  EXPECT_EQ(kind, OverlapKind::kDovetailAB);
}

TEST(Overlap, OverhangZeroForPerfectDovetail) {
  EXPECT_EQ(overhang(make_alignment(600, 1000, 0, 400), 1000, 900), 0u);
  EXPECT_GT(overhang(make_alignment(300, 500, 300, 500), 1000, 1000), 0u);
}

TEST(Overlap, ToStringCoversAllKinds) {
  for (auto kind : {OverlapKind::kDovetailAB, OverlapKind::kDovetailBA,
                    OverlapKind::kContainsB, OverlapKind::kContainedInB}) {
    EXPECT_STRNE(to_string(kind), "?");
  }
}

// ---------- scoring / filter ----------

TEST(Scoring, SubstitutionTable) {
  const Scoring s;
  EXPECT_EQ(s.substitution(0, 0), s.match);
  EXPECT_EQ(s.substitution(0, 1), s.mismatch);
  EXPECT_EQ(s.substitution(seq::kN, seq::kN), s.mismatch);  // N never matches
  EXPECT_EQ(s.substitution(2, seq::kN), s.mismatch);
}

TEST(Filter, ThresholdsAreInclusive) {
  const AlignmentFilter filter{100, 50};
  Alignment alignment = make_alignment(0, 50, 0, 50);
  alignment.score = 100;
  EXPECT_TRUE(filter.accepts(alignment));
  alignment.score = 99;
  EXPECT_FALSE(filter.accepts(alignment));
  alignment.score = 100;
  alignment.a_end = 49;
  alignment.b_end = 48;  // overlap length (49+48)/2 = 48 < 50
  EXPECT_FALSE(filter.accepts(alignment));
}

// ---------- protein ----------

TEST(Protein, ScoringIdentityAndGroups) {
  const ProteinScoring s;
  const auto L = seq::protein_encode('L');
  const auto I = seq::protein_encode('I');
  const auto D = seq::protein_encode('D');
  EXPECT_EQ(s.substitution(L, L), s.identity);
  EXPECT_EQ(s.substitution(L, I), s.same_group);  // both hydrophobic
  EXPECT_EQ(s.substitution(L, D), s.different);
}

TEST(Protein, SmithWatermanFindsConservedRegion) {
  Xoshiro256 rng(51);
  std::vector<std::uint8_t> core(40);
  for (auto& aa : core) aa = static_cast<std::uint8_t>(rng.below(20));
  std::vector<std::uint8_t> a(20, 0), b(30, 1);
  a.insert(a.end(), core.begin(), core.end());
  b.insert(b.end(), core.begin(), core.end());
  a.insert(a.end(), 25, 2);
  const LocalAlignment r = protein_smith_waterman(a, b);
  EXPECT_GE(r.score, 40 * 4 - 8);  // nearly the full conserved block
}

// ---------- affine gaps (Gotoh) ----------

TEST(Affine, MatchesLinearWhenGapCostsCoincide) {
  // With gap_open == gap_extend == gap, affine == linear model.
  Xoshiro256 rng(61);
  const Codes ancestor = random_codes(120, rng);
  const Codes a = mutate(ancestor, 0.1, rng);
  const Codes b = mutate(ancestor, 0.1, rng);
  AffineScoring affine;
  affine.match = 1;
  affine.mismatch = -1;
  affine.gap_open = -1;
  affine.gap_extend = -1;
  Scoring linear;  // defaults: 1/-1/-1
  EXPECT_EQ(affine_smith_waterman(a, b, affine).score, smith_waterman(a, b, linear).score);
  EXPECT_EQ(affine_global_score(a, b, affine), needleman_wunsch_score(a, b, linear));
}

TEST(Affine, LongGapCheaperThanUnderLinearModel) {
  // One long 10-base deletion: affine charges open + 9 extends.
  Codes a(50);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint8_t>(i % 4);
  Codes b = a;
  b.erase(b.begin() + 20, b.begin() + 30);
  const AffineScoring affine;  // open -3, extend -1
  const std::int32_t got = affine_global_score(a, b, affine);
  // 40 matches, one gap of 10: 40 - (3 + 9) = 28.
  EXPECT_EQ(got, 28);
}

TEST(Affine, LocalScoreNonNegativeAndBounded) {
  Xoshiro256 rng(62);
  for (int trial = 0; trial < 8; ++trial) {
    const Codes a = random_codes(80, rng);
    const Codes b = random_codes(90, rng);
    const LocalAlignment r = affine_smith_waterman(a, b);
    EXPECT_GE(r.score, 0);
    EXPECT_LE(r.score, 80);
  }
}

TEST(Affine, IdenticalSequences) {
  Xoshiro256 rng(63);
  const Codes a = random_codes(64, rng);
  EXPECT_EQ(affine_smith_waterman(a, a).score, 64);
  EXPECT_EQ(affine_global_score(a, a), 64);
}

TEST(Affine, CoordinatesRecoverScore) {
  Xoshiro256 rng(64);
  const Codes ancestor = random_codes(100, rng);
  const Codes a = mutate(ancestor, 0.12, rng);
  const Codes b = mutate(ancestor, 0.12, rng);
  const LocalAlignment r = affine_smith_waterman(a, b);
  ASSERT_GT(r.score, 0);
  const Codes sub_a(a.begin() + r.a_begin, a.begin() + r.a_end);
  const Codes sub_b(b.begin() + r.b_begin, b.begin() + r.b_end);
  EXPECT_EQ(affine_smith_waterman(sub_a, sub_b).score, r.score);
}

TEST(Affine, GlobalNeverAboveLocal) {
  Xoshiro256 rng(65);
  const Codes a = random_codes(60, rng);
  const Codes b = random_codes(60, rng);
  EXPECT_LE(affine_global_score(a, b), affine_smith_waterman(a, b).score);
}

// ---------- PAF match-count derivation ----------

namespace {
seq::ReadStore two_read_store(std::size_t len_a, std::size_t len_b) {
  Xoshiro256 rng(81);
  seq::ReadStore store;
  store.add("read_a", seq::Sequence::from_codes(random_codes(len_a, rng)));
  store.add("read_b", seq::Sequence::from_codes(random_codes(len_b, rng)));
  return store;
}
}  // namespace

TEST(Paf, MatchesDerivedFromActualScoring) {
  // Regression: to_paf used to hard-wire the +1/-1 default into the matches
  // estimate. Under match=2/mismatch=-3, a 100-column block of 90 matches
  // and 10 mismatches scores 90*2 - 10*3 = 150; inverting must give 90 back.
  const seq::ReadStore reads = two_read_store(100, 100);
  AlignmentRecord record;
  record.read_a = 0;
  record.read_b = 1;
  record.alignment = make_alignment(0, 100, 0, 100);
  record.alignment.score = 150;

  Scoring scoring;
  scoring.match = 2;
  scoring.mismatch = -3;
  EXPECT_EQ(to_paf(record, reads, scoring).matches, 90u);

  // The old formula ((block + score) / 2, i.e. the +1/-1 inversion) would
  // claim 125 "matches" in a 100-column block — over block_length.
  EXPECT_EQ(to_paf(record, reads).matches, 100u);  // default scoring: clamped
}

TEST(Paf, MatchesClampedToBlockLength) {
  const seq::ReadStore reads = two_read_store(60, 60);
  AlignmentRecord record;
  record.read_a = 0;
  record.read_b = 1;
  record.alignment = make_alignment(0, 50, 0, 50);
  record.alignment.score = 50;  // perfect 50-match block at +1/-1
  const PafRecord perfect = to_paf(record, reads);
  EXPECT_EQ(perfect.matches, 50u);
  EXPECT_EQ(perfect.block_length, 50u);

  record.alignment.score = -200;  // hostile score: clamp at zero
  EXPECT_EQ(to_paf(record, reads).matches, 0u);
}

TEST(Paf, RoundTripsThroughFormatAndParse) {
  const seq::ReadStore reads = two_read_store(80, 90);
  AlignmentRecord record;
  record.read_a = 0;
  record.read_b = 1;
  record.alignment = make_alignment(5, 70, 10, 80);
  record.alignment.score = 42;
  record.alignment.b_reversed = true;
  Scoring scoring;
  scoring.match = 5;
  scoring.mismatch = -4;
  const PafRecord out = to_paf(record, reads, scoring);
  const PafRecord back = parse_paf(format_paf(out));
  EXPECT_EQ(back.matches, out.matches);
  EXPECT_EQ(back.block_length, out.block_length);
  EXPECT_EQ(back.score, out.score);
  EXPECT_TRUE(back.reverse_strand);
  // Reverse-strand target coordinates are reported on the forward strand.
  EXPECT_EQ(back.target_begin, 90u - 80u);
  EXPECT_EQ(back.target_end, 90u - 10u);
}

TEST(Protein, RandomProteinsScoreLow) {
  Xoshiro256 rng(52);
  std::vector<std::uint8_t> a(100), b(100);
  for (auto& aa : a) aa = static_cast<std::uint8_t>(rng.below(20));
  for (auto& aa : b) aa = static_cast<std::uint8_t>(rng.below(20));
  const LocalAlignment r = protein_smith_waterman(a, b);
  EXPECT_LT(r.score, 40);
}

// --- BatchAligner: seam behavior and lane-retirement edge cases -------------
//
// The fuzz sweep (test_fuzz_parity) hammers backend bit-identity across
// randomized scoring and batch shapes; these tests pin the deliberate edge
// cases of the lane engine — empty batches, lanes that all terminate on the
// first rows, widths that force partial fills and mid-flight refills — and
// the row-0 cell accounting both backends must share.

TEST(BatchAligner, EmptyBatchReturnsEmpty) {
  for (const auto kind : {proto::BatchAlignerKind::kScalar, proto::BatchAlignerKind::kSimd}) {
    const auto backend = make_batch_aligner(kind, {});
    EXPECT_TRUE(backend->align({}).empty());
    EXPECT_EQ(backend->stats().batches, 1u);  // an empty batch still counts
    EXPECT_EQ(backend->stats().tasks, 0u);
    EXPECT_EQ(backend->stats().cells, 0u);
  }
}

TEST(BatchAligner, InfoReportsRequestedBackend) {
  const auto scalar = make_batch_aligner(proto::BatchAlignerKind::kScalar, {});
  EXPECT_STREQ(scalar->info().name, "scalar");
  EXPECT_EQ(scalar->info().lanes, 1u);
  EXPECT_FALSE(scalar->info().simd);
  const auto simd = make_batch_aligner(proto::BatchAlignerKind::kSimd, {});
  EXPECT_EQ(simd->info().lanes, 8u);
  EXPECT_TRUE(simd->info().simd);
  if (simd_compiled_in() && cpu_supports_avx2())
    EXPECT_STREQ(simd->info().name, "simd-avx2");
  else
    EXPECT_STREQ(simd->info().name, "simd-portable");
}

namespace {

/// Owned-storage batch: tasks span into `storage`, built in a second pass.
struct TaskBatch {
  std::vector<Codes> storage;  // 2 per task
  std::vector<Seed> seeds;

  void add(Codes a, Codes b, Seed seed) {
    storage.push_back(std::move(a));
    storage.push_back(std::move(b));
    seeds.push_back(seed);
  }
  [[nodiscard]] std::vector<AlignTask> tasks() const {
    std::vector<AlignTask> out;
    for (std::size_t t = 0; t < seeds.size(); ++t)
      out.push_back(AlignTask{storage[2 * t], storage[2 * t + 1], seeds[t]});
    return out;
  }
};

void expect_batches_equal(const std::vector<Alignment>& base,
                          const std::vector<Alignment>& got) {
  ASSERT_EQ(base.size(), got.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].score, got[i].score) << "task " << i;
    EXPECT_EQ(base[i].a_begin, got[i].a_begin) << "task " << i;
    EXPECT_EQ(base[i].a_end, got[i].a_end) << "task " << i;
    EXPECT_EQ(base[i].b_begin, got[i].b_begin) << "task " << i;
    EXPECT_EQ(base[i].b_end, got[i].b_end) << "task " << i;
    EXPECT_EQ(base[i].cells, got[i].cells) << "task " << i;
  }
}

}  // namespace

TEST(BatchAligner, AllLanesEarlyTerminate) {
  // Every task is an unrelated pair: each lane's band collapses within a few
  // rows, exercising retire-and-refill on all lanes at once. Cell counts
  // must match the scalar kernel exactly (the early-termination rows are
  // where the old row-0 miscount lived).
  Xoshiro256 rng(77);
  TaskBatch batch;
  for (int t = 0; t < 20; ++t) {
    Codes a = random_codes(300, rng);
    Codes b = random_codes(300, rng);
    for (std::uint32_t i = 0; i < 13; ++i) b[150 + i] = a[150 + i];
    batch.add(std::move(a), std::move(b), Seed{150, 150, 13, false});
  }
  const auto tasks = batch.tasks();
  const auto scalar = make_batch_aligner(proto::BatchAlignerKind::kScalar, {});
  const auto simd = make_batch_aligner(proto::BatchAlignerKind::kSimd, {});
  expect_batches_equal(scalar->align(tasks), simd->align(tasks));
}

TEST(BatchAligner, MixedLengthsRetireAndRefill) {
  // Lengths spanning two orders of magnitude in one batch: short lanes
  // retire and refill while long lanes keep extending, so lane lifetimes
  // interleave maximally. Identical sequences make every extension run to
  // its full length (no early termination hides a bookkeeping bug).
  Xoshiro256 rng(78);
  TaskBatch batch;
  const std::size_t lengths[] = {8, 900, 16, 700, 31, 500, 64, 300,
                                 9, 1100, 17, 40, 33, 250, 65, 128, 12};
  for (const std::size_t len : lengths) {
    Codes a = random_codes(len, rng);
    Codes b = a;  // identical: full-length extension both directions
    const std::uint16_t k = static_cast<std::uint16_t>(std::min<std::size_t>(7, len));
    const std::uint32_t pos = static_cast<std::uint32_t>(len / 2 - k / 2);
    batch.add(std::move(a), std::move(b), Seed{pos, pos, k, false});
  }
  const auto tasks = batch.tasks();
  const auto scalar = make_batch_aligner(proto::BatchAlignerKind::kScalar, {});
  const auto simd = make_batch_aligner(proto::BatchAlignerKind::kSimd, {});
  expect_batches_equal(scalar->align(tasks), simd->align(tasks));
  // Full-length identical extensions: score equals read length (match = +1).
  const auto results = scalar->align(tasks);
  for (std::size_t t = 0; t < results.size(); ++t)
    EXPECT_EQ(results[t].score, static_cast<std::int32_t>(lengths[t])) << "task " << t;
}

TEST(BatchAligner, SeedAtSequenceEdgesLeavesEmptyExtensions) {
  // Seeds flush against either end produce zero-length extensions on one
  // side; the batch backend must resolve those without enqueueing a lane
  // job (nb >= 1 is a lane-engine precondition).
  Xoshiro256 rng(79);
  Codes a = random_codes(200, rng);
  TaskBatch batch;
  batch.add(a, a, Seed{0, 0, 13, false});  // nothing to the left
  batch.add(a, a, Seed{static_cast<std::uint32_t>(a.size() - 13),
                       static_cast<std::uint32_t>(a.size() - 13), 13, false});
  const auto tasks = batch.tasks();
  const auto scalar = make_batch_aligner(proto::BatchAlignerKind::kScalar, {});
  const auto simd = make_batch_aligner(proto::BatchAlignerKind::kSimd, {});
  expect_batches_equal(scalar->align(tasks), simd->align(tasks));
}

TEST(BatchAligner, StatsAccumulateAcrossBatches) {
  Xoshiro256 rng(80);
  TaskBatch batch;
  Codes a = random_codes(120, rng);
  batch.add(a, a, Seed{60, 60, 13, false});
  const auto tasks = batch.tasks();
  const auto backend = make_batch_aligner(proto::BatchAlignerKind::kSimd, {});
  const auto first = backend->align(tasks);
  const BatchStats after_one = backend->stats();
  EXPECT_EQ(after_one.batches, 1u);
  EXPECT_EQ(after_one.tasks, 1u);
  EXPECT_EQ(after_one.cells, first[0].cells);
  EXPECT_GE(after_one.lane_steps, after_one.lane_steps_active);
  backend->align(tasks);
  const BatchStats after_two = backend->stats();
  EXPECT_EQ(after_two.batches, 2u);
  EXPECT_EQ(after_two.tasks, 2u);
  EXPECT_EQ(after_two.cells, 2 * first[0].cells);
  EXPECT_GT(after_two.occupancy(), 0.0);
  EXPECT_LE(after_two.occupancy(), 1.0);
}

TEST(BatchAligner, PortableLaneEngineMatchesScalar) {
  // The dispatcher picks AVX2 on capable hosts, which would leave the
  // portable instantiation untested exactly where CI runs; drive it
  // directly against xdrop_extend.
  Xoshiro256 rng(81);
  constexpr std::size_t kJobs = 19;  // partial last fill
  std::vector<Codes> as;
  std::vector<Codes> bs;
  for (std::size_t t = 0; t < kJobs; ++t) {
    Codes seq_a = random_codes(40 + rng.below(400), rng);
    Codes seq_b = t % 3 == 0 ? random_codes(40 + rng.below(400), rng) : seq_a;
    as.push_back(std::move(seq_a));
    bs.push_back(std::move(seq_b));
  }
  // Shared b arena with 4 pad bytes in front and 4 after every job.
  std::vector<std::uint8_t> arena(4, 0);
  std::vector<align::detail::ExtJob> jobs;
  for (std::size_t t = 0; t < kJobs; ++t) {
    align::detail::ExtJob job;
    job.a = as[t].data();
    job.na = static_cast<std::int32_t>(as[t].size());
    job.b_off = static_cast<std::int32_t>(arena.size());
    job.nb = static_cast<std::int32_t>(bs[t].size());
    arena.insert(arena.end(), bs[t].begin(), bs[t].end());
    arena.insert(arena.end(), 4, 0);
    jobs.push_back(job);
  }
  const XDropParams params;
  std::vector<Extension> out(kJobs);
  std::vector<std::int32_t> scratch_a;
  std::vector<std::int32_t> scratch_b;
  BatchStats stats;
  align::detail::run_extension_batch_portable(jobs, arena.data(), params, out, scratch_a,
                                       scratch_b, stats);
  for (std::size_t t = 0; t < kJobs; ++t) {
    const Extension expected = xdrop_extend(as[t], bs[t], params);
    EXPECT_EQ(out[t].score, expected.score) << "job " << t;
    EXPECT_EQ(out[t].a_len, expected.a_len) << "job " << t;
    EXPECT_EQ(out[t].b_len, expected.b_len) << "job " << t;
    EXPECT_EQ(out[t].cells, expected.cells) << "job " << t;
  }
}

TEST(BatchAligner, RowZeroCellAccountingMatchesScalar) {
  // Regression for the row-0 miscount: the first DP row's cells are counted
  // before the drop test, so a row-0 early exit still charges the evaluated
  // cells. A hostile pair (immediate mismatch wall, tiny x) terminates on
  // row 0/1 and the backends must still agree on `cells`.
  TaskBatch batch;
  Codes a(64, 0);  // all A
  Codes b(64, 3);  // all T
  for (std::uint32_t i = 0; i < 8; ++i) b[28 + i] = 0;
  batch.add(a, b, Seed{28, 28, 8, false});
  XDropParams params;
  params.x = 0;  // any drop terminates instantly
  const auto tasks = batch.tasks();
  const auto scalar = make_batch_aligner(proto::BatchAlignerKind::kScalar, params);
  const auto simd = make_batch_aligner(proto::BatchAlignerKind::kSimd, params);
  const auto base = scalar->align(tasks);
  expect_batches_equal(base, simd->align(tasks));
  // And both agree with the oracle path.
  const Alignment direct = xdrop_align(tasks[0].a, tasks[0].b, tasks[0].seed, params);
  EXPECT_EQ(base[0].score, direct.score);
  EXPECT_EQ(base[0].cells, direct.cells);
}
