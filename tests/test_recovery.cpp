// Crash-fault recovery suite: the planner's pure decisions (OwnerMap,
// plan_recovery), the crash matrix over both engines (any single or double
// crash schedule must yield an alignment set byte-identical to the
// fault-free run, with every lost task re-executed exactly once), the
// simulator's crash costing, and the pipeline's phase checkpoint/restart
// (a killed run resumes from the last checkpoint and matches an
// uninterrupted one).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include "core/async.hpp"
#include "core/bsp.hpp"
#include "kmer/bella_filter.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/pipeline.hpp"
#include "proto/recovery.hpp"
#include "rt/durable.hpp"
#include "rt/fault.hpp"
#include "rt/world.hpp"
#include "sim/assignment.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "stat/breakdown.hpp"
#include "util/error.hpp"
#include "wl/presets.hpp"

using namespace gnb;

namespace {

#if defined(__SANITIZE_THREAD__)
#define GNB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GNB_TSAN_BUILD 1
#endif
#endif

// ---------- planner: OwnerMap ----------

std::vector<std::uint32_t> partition_bounds(std::uint32_t reads, std::uint32_t ranks) {
  std::vector<std::uint32_t> bounds(ranks + 1);
  for (std::uint32_t r = 0; r <= ranks; ++r)
    bounds[r] = static_cast<std::uint32_t>(std::uint64_t{reads} * r / ranks);
  return bounds;
}

TEST(OwnerMap, AllAliveMatchesBasePartition) {
  const auto bounds = partition_bounds(100, 4);
  const proto::OwnerMap map(bounds, {1, 1, 1, 1});
  for (std::uint32_t read = 0; read < 100; ++read) {
    std::uint32_t base = 0;
    while (read >= bounds[base + 1]) ++base;
    EXPECT_EQ(map.owner(read), base) << "read " << read;
  }
  EXPECT_EQ(map.survivors(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(OwnerMap, DeadIntervalSplitContiguouslyAmongSurvivors) {
  const auto bounds = partition_bounds(120, 4);
  const proto::OwnerMap map(bounds, {1, 0, 1, 1});
  // Alive ranks keep their base intervals.
  for (std::uint32_t read = bounds[0]; read < bounds[1]; ++read) EXPECT_EQ(map.owner(read), 0u);
  for (std::uint32_t read = bounds[2]; read < bounds[3]; ++read) EXPECT_EQ(map.owner(read), 2u);
  for (std::uint32_t read = bounds[3]; read < bounds[4]; ++read) EXPECT_EQ(map.owner(read), 3u);
  // The dead interval is covered entirely by survivors, in ascending-rank
  // contiguous chunks of near-equal size.
  std::vector<std::uint32_t> owners;
  for (std::uint32_t read = bounds[1]; read < bounds[2]; ++read) {
    const std::uint32_t owner = map.owner(read);
    EXPECT_NE(owner, 1u);
    if (owners.empty() || owners.back() != owner) owners.push_back(owner);
  }
  EXPECT_EQ(owners, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(OwnerMap, PureFunctionOfInputs) {
  const auto bounds = partition_bounds(997, 8);
  const std::vector<char> alive{1, 0, 1, 1, 0, 1, 1, 1};
  const proto::OwnerMap a(bounds, alive);
  const proto::OwnerMap b(bounds, alive);
  for (std::uint32_t read = 0; read < 997; ++read) EXPECT_EQ(a.owner(read), b.owner(read));
}

TEST(OwnerMap, EveryReadOwnedBySomeSurvivor) {
  const auto bounds = partition_bounds(53, 5);  // lumpy intervals
  const std::vector<char> alive{0, 1, 0, 1, 1};
  const proto::OwnerMap map(bounds, alive);
  for (std::uint32_t read = 0; read < 53; ++read) {
    const std::uint32_t owner = map.owner(read);
    ASSERT_LT(owner, 5u);
    EXPECT_TRUE(alive[owner]) << "read " << read << " owned by dead rank " << owner;
    EXPECT_TRUE(map.owns(owner, read));
  }
}

// ---------- planner: plan_recovery ----------

TEST(RecoveryPlan, NoDeadRanksYieldsEmptyPlan) {
  const proto::RecoveryPlan plan = proto::plan_recovery({}, {1, 1, 1});
  EXPECT_TRUE(plan.adoptions.empty());
  ASSERT_EQ(plan.assignments.size(), 3u);
  for (const auto& tasks : plan.assignments) EXPECT_TRUE(tasks.empty());
}

TEST(RecoveryPlan, LostTasksAreManifestMinusCompletions) {
  proto::DeadRankState dead;
  dead.rank = 1;
  dead.manifest_tasks = 5;
  dead.completed = {0, 3};  // evidence anywhere in stable storage
  const proto::RecoveryPlan plan = proto::plan_recovery({dead}, {1, 0, 1});
  // Lost tasks 1, 2, 4 dealt round-robin over ascending survivors {0, 2}.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dealt;  // (assignee, index)
  ASSERT_EQ(plan.assignments.size(), 3u);
  EXPECT_TRUE(plan.assignments[1].empty());
  for (const std::uint32_t r : {0u, 2u})
    for (const proto::TaskClaim& claim : plan.assignments[r]) {
      EXPECT_EQ(claim.origin, 1u);
      dealt.emplace_back(r, claim.index);
    }
  ASSERT_EQ(dealt.size(), 3u);
  std::vector<std::uint32_t> indices;
  for (const auto& [r, index] : dealt) indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(indices, (std::vector<std::uint32_t>{1, 2, 4}));
}

TEST(RecoveryPlan, UnclaimedLogWithRecordsGetsAnAdopter) {
  proto::DeadRankState dead;
  dead.rank = 2;
  dead.manifest_tasks = 0;
  dead.has_records = true;
  const std::vector<char> alive{1, 1, 0, 1};
  const proto::RecoveryPlan plan = proto::plan_recovery({dead}, alive);
  ASSERT_EQ(plan.adoptions.size(), 1u);
  EXPECT_EQ(plan.adoptions[0].dead, 2u);
  // survivors[dead % survivors] = {0,1,3}[2 % 3] = 3.
  EXPECT_EQ(plan.adoptions[0].adopter, 3u);
}

TEST(RecoveryPlan, ClaimedLogIsNotAdoptedTwice) {
  proto::DeadRankState dead;
  dead.rank = 0;
  dead.has_records = true;
  dead.claimant = 2;  // an alive rank already merged this log
  const proto::RecoveryPlan plan = proto::plan_recovery({dead}, {0, 1, 1});
  EXPECT_TRUE(plan.adoptions.empty());
}

TEST(RecoveryPlan, Deterministic) {
  std::vector<proto::DeadRankState> dead(2);
  dead[0].rank = 1;
  dead[0].manifest_tasks = 7;
  dead[0].has_records = true;
  dead[1].rank = 4;
  dead[1].manifest_tasks = 3;
  dead[1].completed = {1};
  const std::vector<char> alive{1, 0, 1, 1, 0, 1};
  const proto::RecoveryPlan a = proto::plan_recovery(dead, alive);
  const proto::RecoveryPlan b = proto::plan_recovery(dead, alive);
  ASSERT_EQ(a.adoptions.size(), b.adoptions.size());
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t r = 0; r < a.assignments.size(); ++r) {
    ASSERT_EQ(a.assignments[r].size(), b.assignments[r].size());
    for (std::size_t i = 0; i < a.assignments[r].size(); ++i) {
      EXPECT_EQ(a.assignments[r][i].origin, b.assignments[r][i].origin);
      EXPECT_EQ(a.assignments[r][i].index, b.assignments[r][i].index);
    }
  }
}

// ---------- the crash matrix: engines survive rank death ----------

struct Workload {
  wl::SampledDataset dataset;
  pipeline::TaskSet tasks;
};

Workload make_workload(std::size_t ranks, std::uint64_t seed = 33) {
  Workload w;
  wl::DatasetSpec spec = wl::ecoli30x_spec();
#ifdef GNB_TSAN_BUILD
  spec.genome.length = 2'000;
#else
  spec.genome.length = 10'000;
#endif
  w.dataset = wl::synthesize(spec, seed);
  pipeline::PipelineConfig config;
  config.k = spec.k;
  config.lo = 2;
  config.hi = 8;
  w.tasks = pipeline::run_serial(w.dataset.reads, config, ranks);
  return w;
}

struct RunOutcome {
  std::vector<align::AlignmentRecord> records;  // sorted, all ranks merged
  stat::FaultCounters faults;                   // summed over ranks
};

RunOutcome run_engine(bool async_mode, std::size_t ranks, const Workload& w,
                      const core::EngineConfig& config, const rt::FaultPlan& plan = {}) {
  rt::World world(ranks);
  if (plan.enabled()) world.set_faults(plan);
  std::vector<core::EngineResult> results(ranks);
  world.run([&](rt::Rank& rank) {
    results[rank.id()] =
        async_mode ? core::async_align(rank, w.dataset.reads, w.tasks.bounds,
                                       w.tasks.per_rank[rank.id()], config)
                   : core::bsp_align(rank, w.dataset.reads, w.tasks.bounds,
                                     w.tasks.per_rank[rank.id()], config);
  });
  RunOutcome outcome;
  for (const auto& result : results)
    outcome.records.insert(outcome.records.end(), result.accepted.begin(),
                           result.accepted.end());
  for (const stat::Breakdown& b : world.breakdowns()) outcome.faults.merge(b.faults);
  std::sort(outcome.records.begin(), outcome.records.end(),
            [](const align::AlignmentRecord& x, const align::AlignmentRecord& y) {
              return std::tie(x.read_a, x.read_b, x.alignment.score) <
                     std::tie(y.read_a, y.read_b, y.alignment.score);
            });
  return outcome;
}

/// Byte-identical alignment output: a crash may change when and where
/// tasks execute, never what is computed or how often it is emitted.
void expect_identical(const RunOutcome& crashed, const RunOutcome& clean) {
  ASSERT_EQ(crashed.records.size(), clean.records.size());
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    const align::AlignmentRecord& a = crashed.records[i];
    const align::AlignmentRecord& b = clean.records[i];
    ASSERT_EQ(a.read_a, b.read_a) << "record " << i;
    ASSERT_EQ(a.read_b, b.read_b) << "record " << i;
    EXPECT_EQ(a.alignment.score, b.alignment.score) << "record " << i;
    EXPECT_EQ(a.alignment.a_begin, b.alignment.a_begin) << "record " << i;
    EXPECT_EQ(a.alignment.a_end, b.alignment.a_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_begin, b.alignment.b_begin) << "record " << i;
    EXPECT_EQ(a.alignment.b_end, b.alignment.b_end) << "record " << i;
    EXPECT_EQ(a.alignment.b_reversed, b.alignment.b_reversed) << "record " << i;
    EXPECT_EQ(a.alignment.cells, b.alignment.cells) << "record " << i;
  }
  // No task emitted twice: every (a, b) pair appears at most once.
  for (std::size_t i = 1; i < crashed.records.size(); ++i)
    EXPECT_FALSE(crashed.records[i - 1].read_a == crashed.records[i].read_a &&
                 crashed.records[i - 1].read_b == crashed.records[i].read_b)
        << "duplicate emission of pair (" << crashed.records[i].read_a << ", "
        << crashed.records[i].read_b << ")";
}

rt::FaultPlan crash_plan(std::initializer_list<rt::CrashEvent> crashes) {
  rt::FaultPlan plan;
  plan.crashes = crashes;
  return plan;
}

void run_crash_matrix(bool async_mode, std::size_t ranks, const rt::FaultPlan& plan,
                      const core::EngineConfig& config) {
  const Workload w = make_workload(ranks);
  const RunOutcome clean = run_engine(async_mode, ranks, w, config);
  ASSERT_FALSE(clean.records.empty());
  const RunOutcome crashed = run_engine(async_mode, ranks, w, config, plan);
  expect_identical(crashed, clean);
  // Recovery evidence: every survivor observed the deaths, stable storage
  // was written, and the dead ranks' unfinished tasks were re-executed.
  EXPECT_GT(crashed.faults.crashes, 0u);
  EXPECT_GT(crashed.faults.checkpoint_bytes, 0u);
  std::uint64_t dead_tasks = 0;
  for (const rt::CrashEvent& crash : plan.crashes)
    dead_tasks += w.tasks.per_rank[crash.rank].size();
  if (dead_tasks > 0) EXPECT_GT(crashed.faults.tasks_reexecuted, 0u);
}

class CrashMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrashMatrix, BspSurvivesOneEarlyDeath) {
  run_crash_matrix(false, GetParam(), crash_plan({{1, 0}}), core::EngineConfig{});
}

TEST_P(CrashMatrix, BspSurvivesOneMidPhaseDeath) {
  run_crash_matrix(false, GetParam(), crash_plan({{1, 3}}), core::EngineConfig{});
}

TEST_P(CrashMatrix, AsyncSurvivesOneEarlyDeath) {
  run_crash_matrix(true, GetParam(), crash_plan({{1, 0}}), core::EngineConfig{});
}

TEST_P(CrashMatrix, AsyncSurvivesOneMidPhaseDeath) {
  run_crash_matrix(true, GetParam(), crash_plan({{1, 5}}), core::EngineConfig{});
}

INSTANTIATE_TEST_SUITE_P(Ranks, CrashMatrix, ::testing::Values(2, 4, 8));

class DoubleCrash : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DoubleCrash, BspSurvivesTwoDeaths) {
  run_crash_matrix(false, GetParam(), crash_plan({{1, 0}, {2, 3}}), core::EngineConfig{});
}

TEST_P(DoubleCrash, AsyncSurvivesTwoDeaths) {
  run_crash_matrix(true, GetParam(), crash_plan({{1, 0}, {2, 6}}), core::EngineConfig{});
}

INSTANTIATE_TEST_SUITE_P(Ranks, DoubleCrash, ::testing::Values(4, 8));

TEST(CrashMatrix, BspMultiRoundCrashMidExchange) {
  // A tight round budget forces several supersteps, so the death lands in
  // the middle of the exchange with rounds already consumed on both sides.
  core::EngineConfig tight;
  tight.proto.bsp_round_budget = 1 << 12;
  run_crash_matrix(false, 4, crash_plan({{2, 5}}), tight);
}

TEST(CrashMatrix, AsyncCrashWithSmallWindow) {
  core::EngineConfig config;
  config.proto.async_window = 4;  // deaths interleave with throttled pulls
  run_crash_matrix(true, 4, crash_plan({{3, 8}}), config);
}

// ---------- restart / rejoin: a comeback rank re-enters cleanly ----------

void run_rejoin_case(bool async_mode, std::size_t ranks, const std::string& spec,
                     std::uint64_t want_rejoins) {
  const Workload w = make_workload(ranks);
  const core::EngineConfig config;
  const RunOutcome clean = run_engine(async_mode, ranks, w, config);
  ASSERT_FALSE(clean.records.empty());
  const RunOutcome healed =
      run_engine(async_mode, ranks, w, config, rt::FaultPlan::parse(spec));
  expect_identical(healed, clean);
  EXPECT_GT(healed.faults.crashes, 0u);
  if (want_rejoins > 0) EXPECT_EQ(healed.faults.rejoins, want_rejoins) << spec;
}

class RejoinMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RejoinMatrix, BspRestartedRankRejoins) {
  run_rejoin_case(false, GetParam(), "seed=51,crash@1:0,restart@1:0", 1);
}

TEST_P(RejoinMatrix, AsyncRestartedRankRejoins) {
  run_rejoin_case(true, GetParam(), "seed=52,crash@1:0,restart@1:0", 1);
}

TEST_P(RejoinMatrix, BspMidPhaseCrashRejoins) {
  run_rejoin_case(false, GetParam(), "seed=53,crash@1:3,restart@1:0", 1);
}

TEST_P(RejoinMatrix, AsyncMidPhaseCrashRejoins) {
  run_rejoin_case(true, GetParam(), "seed=54,crash@1:5,restart@1:0", 1);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RejoinMatrix, ::testing::Values(2, 4, 8));

TEST(Rejoin, LateComebackIsAbandonedHarmlessly) {
  // A huge skip budget means the comeback rank declines every admitting
  // gate the survivors still have; it is abandoned at teardown and the
  // output is untouched (no rejoin assertion — abandonment is legal).
  run_rejoin_case(true, 4, "seed=55,crash@1:3,restart@1:50", 0);
}

// ---------- durable-record corruption: torn writes and ancestor chains ----------

TEST(DurableStore, TornLogWriteIsDetectedNotParsed) {
  rt::DurableStore store;
  store.reset(2);
  const rt::DurableStore::Bytes a{1, 2, 3, 4}, b{5, 6, 7}, c{8, 9, 10, 11, 12};
  store.append_log(1, a);
  store.append_log(1, b);
  store.append_log(1, c);
  rt::DurableStore::Bytes expect = a;
  expect.insert(expect.end(), b.begin(), b.end());
  {
    rt::DurableStore::Bytes whole = expect;
    whole.insert(whole.end(), c.begin(), c.end());
    EXPECT_EQ(store.log(1), whole);
    EXPECT_EQ(store.corrupt_records(), 0u);
  }
  // Tear the last record mid-byte — the shape a writer dying mid-write
  // leaves on a real file system. The read must stop cleanly at the valid
  // prefix, never parse garbage.
  store.truncate_last_log_record(1, /*keep=*/13);  // 12-byte header + 1 payload byte
  EXPECT_EQ(store.log(1), expect);
  EXPECT_EQ(store.corrupt_records(), 1u);
  (void)store.log(1);  // detection is counted once, not per read
  EXPECT_EQ(store.corrupt_records(), 1u);
  EXPECT_TRUE(store.log(0).empty());  // other ranks untouched
}

TEST(DurableStore, CorruptManifestFallsBackToValidAncestor) {
  rt::FaultPlan plan;
  plan.corrupts.push_back({0, rt::DurableStore::kKindManifest, 1});
  const rt::FaultInjector injector(plan);
  rt::DurableStore store;
  store.reset(1);
  store.set_injector(&injector);
  const rt::DurableStore::Bytes first{10, 20, 30}, second{40, 50}, third{60, 61, 62};
  store.write_manifest(0, first);   // seq 0: valid
  store.write_manifest(0, second);  // seq 1: corrupted at write time
  EXPECT_EQ(store.manifest(0), first);  // healed through the ancestor
  EXPECT_EQ(store.corrupt_records(), 1u);
  EXPECT_EQ(store.fallback_records(), 1u);
  (void)store.manifest(0);
  EXPECT_EQ(store.corrupt_records(), 1u);  // counted once
  store.write_manifest(0, third);  // seq 2: valid again, heals forward
  EXPECT_EQ(store.manifest(0), third);
  store.set_injector(nullptr);
}

TEST(Corrupt, DeadRanksTornLogHealsToCleanPrefixAsync) {
  // Rank 1's first completion record is corrupted at write time and rank 1
  // later dies: the survivors' evidence scan stops at the (empty) valid
  // prefix and re-executes the lost work — bytes unchanged, detection
  // counted.
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const RunOutcome clean = run_engine(true, kRanks, w, config);
  const RunOutcome healed = run_engine(
      true, kRanks, w, config, rt::FaultPlan::parse("seed=57,crash@1:5,corrupt@1:2:0"));
  expect_identical(healed, clean);
  EXPECT_GE(healed.faults.corrupt_records, 1u);
}

TEST(Corrupt, DeadRanksTornLogHealsToCleanPrefixBsp) {
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const RunOutcome clean = run_engine(false, kRanks, w, config);
  const RunOutcome healed = run_engine(
      false, kRanks, w, config, rt::FaultPlan::parse("seed=58,crash@1:3,corrupt@1:2:0"));
  expect_identical(healed, clean);
  EXPECT_GE(healed.faults.corrupt_records, 1u);
}

TEST(Corrupt, RejoinerManifestRewriteFallsBackToAncestor) {
  // The comeback rank's manifest rewrite (seq 1) is the corrupted record;
  // readers fall back to its original seq-0 manifest — same content, so
  // the run heals with identical bytes and the fallback is observable.
  constexpr std::size_t kRanks = 4;
  const Workload w = make_workload(kRanks);
  const core::EngineConfig config;
  const RunOutcome clean = run_engine(true, kRanks, w, config);
  const RunOutcome healed =
      run_engine(true, kRanks, w, config,
                 rt::FaultPlan::parse("seed=59,crash@1:4,restart@1:0,corrupt@1:1:1"));
  expect_identical(healed, clean);
  EXPECT_EQ(healed.faults.rejoins, 1u);
  EXPECT_GE(healed.faults.corrupt_records, 1u);
  EXPECT_GE(healed.faults.fallback_checkpoints, 1u);
}

// ---------- simulator crash costing ----------

TEST(SimCrash, BspSurvivorsAbsorbDeadWork) {
  wl::TaskModelParams params;
  params.n_reads = 2'000;
  params.n_tasks = 20'000;
  params.mean_length = 4'000;
  const auto workload = wl::generate_sim_workload(params, 1);
  const sim::MachineParams machine = sim::cori_knl(1);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.calibration.cells_per_second = 2e8;
  options.calibration.overhead_per_task = 3e-6;
  const sim::SimResult clean = sim::simulate_bsp(machine, assignment, options);
  options.faults.crashes = {{5, 0}};
  const sim::SimResult crashed = sim::simulate_bsp(machine, assignment, options);
  EXPECT_GT(crashed.runtime, 0.0);
  // The dead rank stops contributing; the survivors book the recovery.
  EXPECT_LT(crashed.ranks[5].compute, clean.ranks[5].compute);
  EXPECT_EQ(crashed.ranks[5].faults.crashes, 0u);
  std::uint64_t reexecuted = 0;
  for (std::size_t r = 0; r < crashed.ranks.size(); ++r) {
    if (r == 5) continue;
    EXPECT_EQ(crashed.ranks[r].faults.crashes, 1u);
    EXPECT_GT(crashed.ranks[r].faults.recovery_seconds, 0.0);
    reexecuted += crashed.ranks[r].faults.tasks_reexecuted;
  }
  EXPECT_GT(reexecuted, 0u);
  // Deterministic: same plan, same costs.
  const sim::SimResult again = sim::simulate_bsp(machine, assignment, options);
  EXPECT_DOUBLE_EQ(crashed.runtime, again.runtime);
}

TEST(SimCrash, AsyncDeadRankWaitsForNobody) {
  wl::TaskModelParams params;
  params.n_reads = 2'000;
  params.n_tasks = 20'000;
  params.mean_length = 4'000;
  const auto workload = wl::generate_sim_workload(params, 2);
  const sim::MachineParams machine = sim::cori_knl(1);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.calibration.cells_per_second = 2e8;
  options.calibration.overhead_per_task = 3e-6;
  const sim::SimResult clean = sim::simulate_async(machine, assignment, options);
  options.faults.crashes = {{3, 1}};
  const sim::SimResult crashed = sim::simulate_async(machine, assignment, options);
  EXPECT_GT(crashed.runtime, 0.0);
  EXPECT_LT(crashed.ranks[3].compute, clean.ranks[3].compute);
  EXPECT_EQ(crashed.ranks[3].sync, 0.0);  // it never reaches the exit barrier
  std::uint64_t reexecuted = 0;
  for (std::size_t r = 0; r < crashed.ranks.size(); ++r) {
    if (r == 3) continue;
    EXPECT_EQ(crashed.ranks[r].faults.crashes, 1u);
    EXPECT_GT(crashed.ranks[r].faults.recovery_seconds, 0.0);
    reexecuted += crashed.ranks[r].faults.tasks_reexecuted;
  }
  EXPECT_GT(reexecuted, 0u);
}

TEST(SimSelfHealing, PartitionStallsOnlyTheRpcFabric) {
  wl::TaskModelParams params;
  params.n_reads = 2'000;
  params.n_tasks = 20'000;
  params.mean_length = 4'000;
  const auto workload = wl::generate_sim_workload(params, 3);
  const sim::MachineParams machine = sim::cori_knl(1);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.calibration.cells_per_second = 2e8;
  options.calibration.overhead_per_task = 3e-6;
  const sim::SimResult clean_bsp = sim::simulate_bsp(machine, assignment, options);
  const sim::SimResult clean_async = sim::simulate_async(machine, assignment, options);
  options.faults.partitions = {{2, 5, 100, 5'000}};  // longer than the lease
  // BSP collectives ride the mail slots: a cut RPC link costs nothing,
  // mirroring the runtime.
  const sim::SimResult cut_bsp = sim::simulate_bsp(machine, assignment, options);
  EXPECT_DOUBLE_EQ(cut_bsp.runtime, clean_bsp.runtime);
  EXPECT_EQ(cut_bsp.ranks[2].faults.suspected, 0u);
  // The async fabric stalls both endpoints for the window and books a
  // (false) suspicion on each.
  const sim::SimResult cut_async = sim::simulate_async(machine, assignment, options);
  EXPECT_GT(cut_async.runtime, clean_async.runtime);
  for (const std::size_t end : {std::size_t{2}, std::size_t{5}}) {
    EXPECT_EQ(cut_async.ranks[end].faults.suspected, 1u);
    EXPECT_EQ(cut_async.ranks[end].faults.false_suspicions, 1u);
    EXPECT_GT(cut_async.ranks[end].faults.recovery_seconds, 0.0);
  }
  // Deterministic: same plan, same costs.
  const sim::SimResult again = sim::simulate_async(machine, assignment, options);
  EXPECT_DOUBLE_EQ(cut_async.runtime, again.runtime);
}

TEST(SimSelfHealing, RestartRejoinAndCorruptionAreCosted) {
  wl::TaskModelParams params;
  params.n_reads = 2'000;
  params.n_tasks = 20'000;
  params.mean_length = 4'000;
  const auto workload = wl::generate_sim_workload(params, 4);
  const sim::MachineParams machine = sim::cori_knl(1);
  const sim::SimAssignment assignment = sim::assign(workload, machine.total_ranks());
  sim::SimOptions options;
  options.calibration.cells_per_second = 2e8;
  options.calibration.overhead_per_task = 3e-6;
  options.faults.crashes = {{3, 1}};
  const sim::SimResult crash_only = sim::simulate_async(machine, assignment, options);
  options.faults.restarts = {{3, 0}};
  const sim::SimResult rejoined = sim::simulate_async(machine, assignment, options);
  // The comeback rank books its rejoin; re-admission agreement costs
  // communication on every participant.
  EXPECT_EQ(rejoined.ranks[3].faults.rejoins, 1u);
  EXPECT_GT(rejoined.runtime, crash_only.runtime);
  // A restart without a matching crash never fires.
  sim::SimOptions no_crash;
  no_crash.calibration = options.calibration;
  no_crash.faults.restarts = {{3, 0}};
  const sim::SimResult idle = sim::simulate_async(machine, assignment, no_crash);
  EXPECT_EQ(idle.ranks[3].faults.rejoins, 0u);
  // Corruption: detection on the store (charged to rank 0), plus the
  // ancestor fallback when the corrupted write is a rewrite (seq > 0).
  sim::SimOptions corrupt;
  corrupt.calibration = options.calibration;
  corrupt.faults.corrupts = {{0, 1, 1}};
  const sim::SimResult healed = sim::simulate_async(machine, assignment, corrupt);
  EXPECT_EQ(healed.ranks[0].faults.corrupt_records, 1u);
  EXPECT_EQ(healed.ranks[0].faults.fallback_checkpoints, 1u);
  sim::SimOptions fault_free;
  fault_free.calibration = options.calibration;
  const sim::SimResult clean = sim::simulate_async(machine, assignment, fault_free);
  EXPECT_GT(healed.runtime, clean.runtime);
}

// ---------- pipeline phase checkpoint / restart ----------

namespace fs = std::filesystem;

struct CheckpointFixture {
  wl::SampledDataset dataset;
  pipeline::PipelineConfig config;
  align::XDropParams xdrop;
  align::AlignmentFilter filter{50, 100};
};

const CheckpointFixture& checkpoint_fixture() {
  static const CheckpointFixture f = [] {
    CheckpointFixture fx;
    wl::DatasetSpec spec = wl::tiny_spec();
    spec.genome.length = 8'000;
    spec.reads.coverage = 8;
    fx.dataset = wl::synthesize(spec, 17);
    const auto bounds = kmer::reliable_bounds(
        kmer::BellaParams{spec.reads.coverage, spec.reads.error_rate, spec.k, 1e-3});
    fx.config.k = spec.k;
    fx.config.lo = bounds.lo;
    fx.config.hi = bounds.hi;
    return fx;
  }();
  return f;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(Checkpoint, KilledRunResumesAndMatchesUninterrupted) {
  const CheckpointFixture& f = checkpoint_fixture();
  pipeline::CheckpointConfig straight{fresh_dir("gnb_ckpt_straight"), 16};
  const pipeline::CheckpointedRun whole = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, straight);
  ASSERT_TRUE(whole.finished);
  ASSERT_GT(whole.progress.watermark, 32u) << "workload too small to interrupt";

  // Kill the run mid-alignment (no final flush — as a real kill leaves it),
  // then restart in the same directory.
  pipeline::CheckpointConfig killed{fresh_dir("gnb_ckpt_killed"), 16};
  const std::uint64_t stop_after = whole.progress.watermark / 2;
  const pipeline::CheckpointedRun partial = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, killed, stop_after);
  EXPECT_FALSE(partial.finished);

  const pipeline::CheckpointedRun resumed = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, killed);
  EXPECT_TRUE(resumed.finished);
  EXPECT_TRUE(resumed.resumed_tasks);  // stages 1-3 came from disk
  EXPECT_GT(resumed.resumed_watermark, 0u);
  EXPECT_LE(resumed.resumed_watermark, stop_after);

  // The resumed run's output is identical to the uninterrupted run's.
  EXPECT_EQ(resumed.progress.watermark, whole.progress.watermark);
  ASSERT_EQ(resumed.progress.accepted.size(), whole.progress.accepted.size());
  for (std::size_t i = 0; i < whole.progress.accepted.size(); ++i) {
    EXPECT_EQ(resumed.progress.accepted[i].read_a, whole.progress.accepted[i].read_a);
    EXPECT_EQ(resumed.progress.accepted[i].read_b, whole.progress.accepted[i].read_b);
    EXPECT_EQ(resumed.progress.accepted[i].alignment.score,
              whole.progress.accepted[i].alignment.score);
  }
}

TEST(Checkpoint, SecondCallIsAPureResume) {
  const CheckpointFixture& f = checkpoint_fixture();
  pipeline::CheckpointConfig ckpt{fresh_dir("gnb_ckpt_rerun"), 16};
  const pipeline::CheckpointedRun first = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 2, f.xdrop, f.filter, ckpt);
  ASSERT_TRUE(first.finished);
  const pipeline::CheckpointedRun second = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 2, f.xdrop, f.filter, ckpt);
  EXPECT_TRUE(second.finished);
  EXPECT_TRUE(second.resumed_tasks);
  EXPECT_EQ(second.resumed_watermark, first.progress.watermark);
  EXPECT_EQ(second.progress.accepted.size(), first.progress.accepted.size());
}

TEST(Checkpoint, FingerprintMismatchRecomputesInsteadOfResuming) {
  const CheckpointFixture& f = checkpoint_fixture();
  const fs::path dir = fresh_dir("gnb_ckpt_fpr");
  pipeline::CheckpointConfig ckpt{dir, 16};
  const pipeline::CheckpointedRun two = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 2, f.xdrop, f.filter, ckpt);
  ASSERT_TRUE(two.finished);
  // Same directory, different rank count: the stale checkpoints must be
  // ignored (recomputed), not resumed and not fatal.
  const pipeline::CheckpointedRun three = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 3, f.xdrop, f.filter, ckpt);
  EXPECT_TRUE(three.finished);
  EXPECT_FALSE(three.resumed_tasks);
  EXPECT_EQ(three.resumed_watermark, 0u);
}

TEST(CheckpointBlob, RoundTripAndStaleFingerprint) {
  const fs::path dir = fresh_dir("gnb_ckpt_blob");
  fs::create_directories(dir);
  const fs::path path = dir / "unit.ckpt";
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5, 250, 251, 252};
  pipeline::save_blob(path, 9, 0xABCDu, payload);
  const auto loaded = pipeline::load_blob(path, 9, 0xABCDu);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  // A fingerprint mismatch is "stale": absent, not fatal.
  EXPECT_FALSE(pipeline::load_blob(path, 9, 0x1234u).has_value());
  // A missing file is absent too.
  EXPECT_FALSE(pipeline::load_blob(dir / "nope.ckpt", 9, 0xABCDu).has_value());
}

std::vector<char> file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::vector<char>& bytes,
                std::size_t count = static_cast<std::size_t>(-1)) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(std::min(count, bytes.size())));
}

TEST(CheckpointBlob, CorruptionQuarantinesAndFallsBackToAncestor) {
  pipeline::reset_checkpoint_health();
  const fs::path dir = fresh_dir("gnb_ckpt_corrupt_heal");
  fs::create_directories(dir);
  const fs::path path = dir / "unit.ckpt";
  const std::vector<std::uint8_t> first(64, 0x5A), second(64, 0xA5);
  pipeline::save_blob(path, 3, 7, first);
  pipeline::save_blob(path, 3, 7, second);  // promotes `first` to ".prev"
  ASSERT_TRUE(fs::exists(fs::path(path.string() + ".prev")));
  // Flip a payload bit under the checksum of the current record.
  auto bytes = file_bytes(path);
  ASSERT_FALSE(bytes.empty());
  bytes.back() ^= 0x01;
  write_file(path, bytes);
  const auto healed = pipeline::load_blob(path, 3, 7);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(*healed, first);  // the last valid ancestor, not an abort
  EXPECT_TRUE(fs::exists(fs::path(path.string() + ".corrupt")));  // quarantined
  pipeline::CheckpointHealth health = pipeline::checkpoint_health();
  EXPECT_EQ(health.corrupt_records, 1u);
  EXPECT_EQ(health.fallback_checkpoints, 1u);
  // The ancestor was re-promoted to current: the next load is clean and
  // nothing is recounted.
  const auto again = pipeline::load_blob(path, 3, 7);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, first);
  EXPECT_EQ(pipeline::checkpoint_health().corrupt_records, 1u);
}

TEST(CheckpointBlob, CorruptionWithoutAncestorDegradesToRecompute) {
  pipeline::reset_checkpoint_health();
  const fs::path dir = fresh_dir("gnb_ckpt_corrupt_bare");
  fs::create_directories(dir);
  const fs::path path = dir / "unit.ckpt";
  const std::vector<std::uint8_t> payload(64, 0x5A);
  pipeline::save_blob(path, 3, 7, payload);
  const auto bytes = file_bytes(path);
  ASSERT_FALSE(bytes.empty());
  // Magic corruption with no ".prev": absent (recompute), never fatal.
  auto flipped = bytes;
  flipped[0] ^= 0x01;
  write_file(path, flipped);
  EXPECT_FALSE(pipeline::load_blob(path, 3, 7).has_value());
  EXPECT_TRUE(fs::exists(fs::path(path.string() + ".corrupt")));
  EXPECT_EQ(pipeline::checkpoint_health().corrupt_records, 1u);
  EXPECT_EQ(pipeline::checkpoint_health().fallback_checkpoints, 0u);
  // Truncated header: detected as corrupt, degrades the same way.
  write_file(path, bytes, 5);
  EXPECT_FALSE(pipeline::load_blob(path, 3, 7).has_value());
  EXPECT_EQ(pipeline::checkpoint_health().corrupt_records, 2u);
  // Wrong kind on an otherwise-valid blob: quarantined like any other
  // malformation (the caller recomputes; nothing throws).
  write_file(path, bytes);
  EXPECT_FALSE(pipeline::load_blob(path, 4, 7).has_value());
  EXPECT_EQ(pipeline::checkpoint_health().corrupt_records, 3u);
}

TEST(Checkpoint, InjectedProgressCorruptionHealsOnResume) {
  // End-to-end through run_serial_checkpointed: the second alignment-
  // progress flush (kind 3, seq 1) is corrupted at write time; the killed
  // run's resume falls back to the seq-0 flush and recomputes the gap,
  // finishing with output identical to an uninterrupted run.
  const CheckpointFixture& f = checkpoint_fixture();
  pipeline::CheckpointConfig straight{fresh_dir("gnb_ckpt_heal_ref"), 16};
  const pipeline::CheckpointedRun whole = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, straight);
  ASSERT_TRUE(whole.finished);
  ASSERT_GT(whole.progress.watermark, 40u) << "workload too small for two flushes";

  pipeline::reset_checkpoint_health();
  rt::FaultPlan plan;
  plan.corrupts.push_back({0, 3, 1});
  const rt::FaultInjector injector(plan);
  pipeline::CheckpointConfig wounded{fresh_dir("gnb_ckpt_heal"), 16};
  pipeline::set_checkpoint_fault_injector(&injector);
  const pipeline::CheckpointedRun partial = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, wounded, /*stop_after_tasks=*/40);
  pipeline::set_checkpoint_fault_injector(nullptr);
  EXPECT_FALSE(partial.finished);

  const pipeline::CheckpointedRun resumed = pipeline::run_serial_checkpointed(
      f.dataset.reads, f.config, 4, f.xdrop, f.filter, wounded);
  EXPECT_TRUE(resumed.finished);
  EXPECT_GT(resumed.resumed_watermark, 0u);
  EXPECT_LE(resumed.resumed_watermark, 16u);  // healed back to the seq-0 flush
  const pipeline::CheckpointHealth health = pipeline::checkpoint_health();
  EXPECT_GE(health.corrupt_records, 1u);
  EXPECT_GE(health.fallback_checkpoints, 1u);
  EXPECT_EQ(resumed.progress.watermark, whole.progress.watermark);
  ASSERT_EQ(resumed.progress.accepted.size(), whole.progress.accepted.size());
  for (std::size_t i = 0; i < whole.progress.accepted.size(); ++i) {
    EXPECT_EQ(resumed.progress.accepted[i].read_a, whole.progress.accepted[i].read_a);
    EXPECT_EQ(resumed.progress.accepted[i].read_b, whole.progress.accepted[i].read_b);
    EXPECT_EQ(resumed.progress.accepted[i].alignment.score,
              whole.progress.accepted[i].alignment.score);
  }
}

// --- graph / assembly checkpoints (kinds 4 and 5) ---

TEST(CheckpointGraph, RoundTripAndStaleFingerprint) {
  const fs::path dir = fresh_dir("gnb_ckpt_graph");
  fs::create_directories(dir);
  const fs::path path = dir / "graph.ckpt";

  pipeline::GraphCheckpoint ckpt;
  ckpt.stats.reads = 5;
  ckpt.stats.contained = 1;
  ckpt.stats.dovetail_edges = 6;
  ckpt.stats.reduced_edges = 2;
  ckpt.contained = {false, true, false, false, false};
  ckpt.edges = {
      {graph::make_node(0, false), graph::make_node(2, false), 300, 250, false},
      {graph::make_node(2, true), graph::make_node(0, true), 300, 250, false},
      {graph::make_node(0, false), graph::make_node(3, true), 120, 80, true},
  };
  pipeline::save_graph(path, 0x5EEDu, ckpt);
  const auto loaded = pipeline::load_graph(path, 0x5EEDu);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == ckpt);
  // Stale fingerprint: absent, not fatal — the caller recomputes.
  EXPECT_FALSE(pipeline::load_graph(path, 0xBAD5EEDu).has_value());
  EXPECT_FALSE(pipeline::load_graph(dir / "missing.ckpt", 0x5EEDu).has_value());
}

TEST(CheckpointAssembly, RoundTripsTheFullResult) {
  const fs::path dir = fresh_dir("gnb_ckpt_assembly");
  fs::create_directories(dir);
  const fs::path path = dir / "assembly.ckpt";

  graph::AssemblyResult result;
  result.graph_stats.reads = 3;
  result.graph_stats.dovetail_edges = 2;
  result.contained = {false, false, true};
  result.edges = {
      {graph::make_node(0, false), graph::make_node(1, false), 200, 180, false},
      {graph::make_node(1, true), graph::make_node(0, true), 200, 180, false},
  };
  graph::Contig contig;
  contig.path = {graph::make_node(0, false), graph::make_node(1, false)};
  contig.advances = {300};
  contig.length = 800;
  result.contigs = {contig};
  result.stats.contigs = 1;
  result.stats.total_length = 800;
  result.stats.longest = 800;
  result.stats.n50 = 800;
  result.gfa = "H\tVN:Z:1.0\nS\tr0\t*\tLN:i:500\n";
  pipeline::save_assembly(path, 0xA55E4Bu, result);
  const auto loaded = pipeline::load_assembly(path, 0xA55E4Bu);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == result);
  EXPECT_EQ(loaded->gfa, result.gfa);  // exact bytes, not just equal fields
  EXPECT_FALSE(pipeline::load_assembly(path, 0x0u).has_value());
}

}  // namespace
